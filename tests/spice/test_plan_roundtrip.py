"""Serialized plans: round-trip fidelity, refusal codes, cache tiers.

The contract under test is the tentpole of the plan-serialization layer:
a compiled plan pickled in one process and restored in another is
*bit-identical* in behaviour to the fresh compile, every restore that
crosses a process boundary passes the plan audit before first use, and a
stale or tampered payload is refused loudly with ``P008`` — while the
cache treats a stale *version* as a plain miss, never an error.
"""

import os
import pathlib
import pickle
import subprocess
import sys

import numpy as np
import pytest

from repro.errors import ConfigError, PlanAuditError
from repro.spice.audit import audit_plan
from repro.spice.compile import PLAN_FORMAT_VERSION, CompiledTransient
from repro.spice.plan import (
    CompiledPlan,
    PlanCache,
    compile_cached,
    fingerprint_of,
    plan_fingerprint,
    reset_default_plan_cache,
)
from repro.sram.benches import (
    BENCH_NAMES,
    bench_compiled,
    bench_solver_choices,
)

SRC_DIR = pathlib.Path(__file__).resolve().parents[2] / "src"

MATRIX = [
    (name, assembly, solver)
    for name in BENCH_NAMES
    for assembly in ("dense", "sparse")
    for solver in bench_solver_choices(name)
]


def _bench_ic(name):
    """Initial conditions for the audit-sized bench circuits."""
    if name == "6t":
        return {"q": 0.0, "qb": 1.0, "bl": 1.0, "blb": 1.0}
    if name == "latch":
        return {"sout": 0.9, "soutb": 1.0, "tail": 0.0}
    if name == "write":
        return {"q": 1.0, "qb": 0.0, "bl": 0.0, "blb": 1.0}
    if name == "column":
        from repro.sram.column import ColumnConfig, ReadColumn

        return ReadColumn(config=ColumnConfig(n_leakers=3))._initial_conditions()
    from repro.sram.array import ArrayConfig, ArraySlice

    return ArraySlice(
        config=ArrayConfig(n_cols=2, n_leakers=3)
    )._initial_conditions()


def _run_bench(ct, name, n=8, seed=7):
    rng = np.random.default_rng(seed)
    dvth = rng.normal(0.0, 0.03, size=(n, len(ct.device_names)))
    return ct.run(ic=_bench_ic(name), n=n, delta_vth=dvth)


def _assert_results_bit_equal(res_a, res_b):
    for group in ("final", "cross", "peak", "value"):
        d_a, d_b = getattr(res_a, group), getattr(res_b, group)
        assert sorted(d_a) == sorted(d_b)
        for key in d_a:
            np.testing.assert_array_equal(d_a[key], d_b[key])
    np.testing.assert_array_equal(res_a.converged, res_b.converged)


@pytest.fixture(autouse=True)
def _isolated_default_cache():
    """Keep the process-wide cache out of these tests (and vice versa)."""
    reset_default_plan_cache()
    yield
    reset_default_plan_cache()


class TestRoundTripMatrix:
    """ISSUE acceptance: every bench, every assembly/solver combination."""

    @pytest.mark.parametrize("name,assembly,solver", MATRIX)
    def test_pickle_round_trip_bit_identical_and_audited(
        self, name, assembly, solver
    ):
        ct = bench_compiled(name, assembly=assembly, solver=solver)
        before = _run_bench(ct, name)
        restored = pickle.loads(pickle.dumps(ct))
        # __setstate__ already ran assert_plan_clean; re-audit explicitly.
        assert [d for d in audit_plan(restored) if d.severity == "error"] == []
        _assert_results_bit_equal(before, _run_bench(restored, name))

    @pytest.mark.parametrize("name,assembly,solver", MATRIX)
    def test_byte_container_round_trip(self, name, assembly, solver):
        ct = bench_compiled(name, assembly=assembly, solver=solver)
        plan = CompiledPlan.from_compiled(ct)
        blob = plan.to_bytes()
        decoded = CompiledPlan.from_bytes(
            blob, expected_fingerprint=plan.fingerprint
        )
        assert decoded.fingerprint == plan.fingerprint
        assert decoded.format_version == PLAN_FORMAT_VERSION
        restored = decoded.restore()
        _assert_results_bit_equal(_run_bench(ct, name), _run_bench(restored, name))


class TestFreshInterpreterRestore:
    def test_plan_serialized_here_runs_bit_identically_there(self, tmp_path):
        """Compile once, ship the bytes, restore in a fresh interpreter."""
        name = "array"
        ct = bench_compiled(name)
        blob_path = tmp_path / "array.plan"
        blob_path.write_bytes(CompiledPlan.from_compiled(ct).to_bytes())
        res = _run_bench(ct, name)
        here = [
            res.cross["access"].tobytes().hex(),
            res.value["diff_at_wl_fall"].tobytes().hex(),
        ]
        script = tmp_path / "restore_and_run.py"
        script.write_text(
            "import sys, numpy as np\n"
            "from repro.spice.plan import CompiledPlan\n"
            "sys.path.insert(0, sys.argv[3])\n"
            "from test_plan_roundtrip import _run_bench\n"
            "ct = CompiledPlan.from_bytes(\n"
            "    open(sys.argv[1], 'rb').read()).restore()\n"
            "res = _run_bench(ct, sys.argv[2])\n"
            "print(res.cross['access'].tobytes().hex())\n"
            "print(res.value['diff_at_wl_fall'].tobytes().hex())\n"
        )
        env = dict(os.environ, PYTHONPATH=str(SRC_DIR))
        env.pop("REPRO_PLAN_CACHE", None)
        proc = subprocess.run(
            [
                sys.executable,
                str(script),
                str(blob_path),
                name,
                str(pathlib.Path(__file__).parent),
            ],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        assert proc.stdout.splitlines() == here


class TestRefusals:
    def test_tampered_body_refused_with_p008(self):
        blob = bytearray(
            CompiledPlan.from_compiled(bench_compiled("latch")).to_bytes()
        )
        blob[-1] ^= 0xFF
        with pytest.raises(PlanAuditError, match="checksum") as exc:
            CompiledPlan.from_bytes(bytes(blob))
        assert exc.value.code == "P008"

    def test_truncated_container_refused(self):
        blob = CompiledPlan.from_compiled(bench_compiled("latch")).to_bytes()
        with pytest.raises(PlanAuditError) as exc:
            CompiledPlan.from_bytes(blob[: len(blob) // 2])
        assert exc.value.code == "P008"

    def test_stale_format_version_refused_on_direct_load(self):
        blob = _with_format(
            CompiledPlan.from_compiled(bench_compiled("latch")).to_bytes(),
            PLAN_FORMAT_VERSION + 1,
        )
        with pytest.raises(PlanAuditError, match="stale plan format") as exc:
            CompiledPlan.from_bytes(blob)
        assert exc.value.code == "P008"

    def test_fingerprint_mismatch_refused(self):
        blob = CompiledPlan.from_compiled(bench_compiled("latch")).to_bytes()
        with pytest.raises(PlanAuditError, match="fingerprint mismatch"):
            CompiledPlan.from_bytes(blob, expected_fingerprint="0" * 64)

    def test_stale_pickle_payload_refused_by_setstate(self):
        plan = CompiledPlan.from_compiled(bench_compiled("latch"))
        ct = object.__new__(CompiledTransient)
        with pytest.raises(PlanAuditError) as exc:
            ct.__setstate__({"format": PLAN_FORMAT_VERSION + 1, "state": plan.state})
        assert exc.value.code == "P008"

    def test_malformed_pickle_payload_refused_by_setstate(self):
        ct = object.__new__(CompiledTransient)
        with pytest.raises(PlanAuditError) as exc:
            ct.__setstate__({"state": {}})
        assert exc.value.code == "P008"


def _with_format(blob: bytes, version: int) -> bytes:
    """Rewrite the container header's format field (test forgery helper)."""
    import json
    import struct

    (hlen,) = struct.unpack_from("<I", blob)
    head = json.loads(blob[4 : 4 + hlen].decode("utf-8"))
    head["format"] = version
    new_head = json.dumps(head, sort_keys=True, separators=(",", ":")).encode()
    return struct.pack("<I", len(new_head)) + new_head + blob[4 + hlen :]


class TestFingerprint:
    def test_stable_across_rebuilds(self):
        a = bench_compiled("column")
        b = bench_compiled("column")
        assert fingerprint_of(a) == fingerprint_of(b)

    def test_sensitive_to_structure_and_options(self):
        base = bench_compiled("column")
        fp = fingerprint_of(base)
        assert fingerprint_of(bench_compiled("column", n_leakers=4)) != fp
        assert fingerprint_of(bench_compiled("column", assembly="dense")) != fp
        assert fingerprint_of(bench_compiled("column", n_steps=200)) != fp

    def test_variation_inputs_excluded(self):
        """Retargeting delta_vth/beta_mult must never bust the cache."""
        ct = bench_compiled("6t")
        fp = fingerprint_of(ct)
        mos = next(e for e in ct.circuit.elements if hasattr(e, "delta_vth"))
        original = mos.delta_vth
        try:
            mos.delta_vth = 0.05
            assert fingerprint_of(ct) == fp
        finally:
            mos.delta_vth = original

    def test_unknown_option_rejected(self):
        ct = bench_compiled("6t")
        with pytest.raises(ConfigError, match="unknown compile option"):
            plan_fingerprint(ct.circuit, ct.grid, turbo=True)


class TestPlanCache:
    def _compile(self, cache, **overrides):
        ct = bench_compiled("latch")
        probes = (*ct._cross_probes, *ct._peak_probes, *ct._value_probes)
        return compile_cached(
            ct.circuit, ct.grid, probes=probes, cache=cache, **overrides
        )

    def test_memory_tier_hit_is_fresh_and_equivalent(self):
        cache = PlanCache()
        first = self._compile(cache)
        second = self._compile(cache)
        assert second is not first
        assert cache.stats["mem_hits"] == 1 and cache.stats["misses"] == 1
        _assert_results_bit_equal(
            _run_bench(first, "latch"), _run_bench(second, "latch")
        )

    def test_disk_tier_restores_in_a_new_cache(self, tmp_path):
        writer = PlanCache(cache_dir=tmp_path)
        first = self._compile(writer)
        reader = PlanCache(cache_dir=tmp_path)
        second = self._compile(reader)
        assert reader.stats["disk_hits"] == 1 and reader.stats["misses"] == 0
        _assert_results_bit_equal(
            _run_bench(first, "latch"), _run_bench(second, "latch")
        )

    def test_stale_disk_entry_is_a_miss_not_an_error(self, tmp_path):
        writer = PlanCache(cache_dir=tmp_path)
        self._compile(writer)
        (entry,) = tmp_path.glob("*.plan")
        entry.write_bytes(
            _with_format(entry.read_bytes(), PLAN_FORMAT_VERSION + 1)
        )
        reader = PlanCache(cache_dir=tmp_path)
        self._compile(reader)  # recompiles, then overwrites the entry
        assert reader.stats["stale"] == 1
        assert reader.stats["misses"] == 1
        assert reader.stats["disk_hits"] == 0
        fresh = PlanCache(cache_dir=tmp_path)
        self._compile(fresh)
        assert fresh.stats["disk_hits"] == 1  # the rewrite healed the store

    def test_corrupt_disk_entry_raises_p008(self, tmp_path):
        writer = PlanCache(cache_dir=tmp_path)
        self._compile(writer)
        (entry,) = tmp_path.glob("*.plan")
        blob = bytearray(entry.read_bytes())
        blob[-1] ^= 0xFF
        entry.write_bytes(bytes(blob))
        with pytest.raises(PlanAuditError) as exc:
            self._compile(PlanCache(cache_dir=tmp_path))
        assert exc.value.code == "P008"

    def test_mutation_isolation_between_hits(self):
        cache = PlanCache()
        mutated = self._compile(cache)
        mutated._plan.hs = mutated._plan.hs * 2.0  # audit-test-style surgery
        assert any(d.code == "P005" for d in audit_plan(mutated))
        clean = self._compile(cache)
        assert [d for d in audit_plan(clean) if d.severity == "error"] == []

    def test_lru_eviction_bounds_the_memory_tier(self):
        cache = PlanCache(max_entries=1)
        self._compile(cache)
        self._compile(cache, newton_max_iter=30)
        assert len(cache) == 1
        self._compile(cache)  # evicted -> compiles again
        assert cache.stats["misses"] == 3

    def test_unwritable_cache_dir_is_a_config_error(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        with pytest.raises(ConfigError, match="not writable"):
            PlanCache(cache_dir=blocker / "store")

    def test_bad_max_entries_rejected(self):
        with pytest.raises(ConfigError, match="max_entries"):
            PlanCache(max_entries=0)
