"""Determinism audit: shard plans proven disjoint, budgets canonical.

Mutation-style: every defect class a hand-built or deserialized shard
plan could carry (reused stream, ad-hoc budgets, fresh seeds instead of
spawned children, out-of-order merge) gets injected and must report its
exact D-code; the plans ``ShardedRunner`` actually builds must audit
clean.
"""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.engine import (
    ShardResult,
    assert_shard_plan_clean,
    audit_runner_merge,
    audit_shard_plan,
    spawn_generators,
    split_budget,
)
from repro.errors import PlanAuditError


def _codes(diags):
    return sorted({d.code for d in diags})


def _errors(diags):
    return [d for d in diags if d.severity == "error"]


class TestCleanPlans:
    @pytest.mark.parametrize("n_shards,total", [(1, 10), (2, 100), (4, 101), (7, 3)])
    def test_spawned_plan_is_clean(self, n_shards, total):
        parent = np.random.default_rng(123)
        rngs = spawn_generators(parent, n_shards)
        budgets = split_budget(total, n_shards)
        assert audit_shard_plan(rngs, budgets, total=total, parent=parent) == []

    def test_assert_clean_returns_diags(self):
        parent = np.random.default_rng(5)
        rngs = spawn_generators(parent, 3)
        out = assert_shard_plan_clean(rngs, split_budget(30, 3), total=30, parent=parent)
        assert out == []


class TestStreamMutations:
    def test_d001_same_generator_object(self):
        rng = np.random.default_rng(0)
        diags = _errors(audit_shard_plan([rng, rng], [5, 5], total=10))
        assert "D001" in _codes(diags)

    def test_d001_reused_seed_sequence(self):
        """Two distinct Generator objects over one spawned stream."""
        ss = np.random.SeedSequence(42).spawn(1)[0]
        a = np.random.Generator(np.random.PCG64(ss))
        b = np.random.Generator(np.random.PCG64(ss))
        diags = _errors(audit_shard_plan([a, b], [5, 5], total=10))
        assert _codes(diags) == ["D001"]

    def test_d001_warning_when_identity_unavailable(self):
        opaque = SimpleNamespace(bit_generator=SimpleNamespace())
        diags = audit_shard_plan([opaque], [5], total=5)
        assert [d.code for d in diags] == ["D001"]
        assert diags[0].severity == "warning"


class TestBudgetMutations:
    def test_d002_wrong_split(self):
        parent = np.random.default_rng(1)
        rngs = spawn_generators(parent, 2)
        # split_budget(7, 2) == [4, 3]; the reversed plan is a different
        # (and therefore wrong) deterministic plan.
        diags = _errors(audit_shard_plan(rngs, [3, 4], total=7, parent=parent))
        assert _codes(diags) == ["D002"]

    def test_d002_negative_budget(self):
        parent = np.random.default_rng(1)
        rngs = spawn_generators(parent, 2)
        diags = _errors(audit_shard_plan(rngs, [8, -1], total=7))
        assert _codes(diags) == ["D002"]

    def test_d002_length_mismatch(self):
        parent = np.random.default_rng(1)
        rngs = spawn_generators(parent, 3)
        diags = _errors(audit_shard_plan(rngs, [5, 5], total=10))
        assert "D002" in _codes(diags)


class TestLineageMutations:
    def test_d004_fresh_seeds_instead_of_spawn(self):
        parent = np.random.default_rng(9)
        rngs = [np.random.default_rng(9 + i) for i in range(3)]
        diags = _errors(
            audit_shard_plan(rngs, split_budget(30, 3), total=30, parent=parent)
        )
        assert "D004" in _codes(diags)

    def test_d004_grandchild_is_not_a_child(self):
        parent = np.random.default_rng(9)
        child = spawn_generators(parent, 1)[0]
        grandchild = child.spawn(1)[0]
        diags = _errors(audit_shard_plan([grandchild], [5], total=5, parent=parent))
        assert "D004" in _codes(diags)

    def test_spawned_children_pass_lineage(self):
        parent = np.random.default_rng(9)
        rngs = spawn_generators(parent, 5)
        diags = audit_shard_plan(rngs, split_budget(50, 5), total=50, parent=parent)
        assert diags == []


class TestMergeOrder:
    def _results(self, order):
        return [ShardResult(index=i, n_evals=1, payload=None) for i in order]

    def test_d003_out_of_order(self):
        diags = audit_runner_merge(self._results([1, 0, 2]))
        assert _codes(diags) == ["D003"]

    def test_d003_gap(self):
        diags = audit_runner_merge(self._results([0, 2]))
        assert _codes(diags) == ["D003"]

    def test_in_order_clean(self):
        assert audit_runner_merge(self._results([0, 1, 2, 3])) == []
        assert audit_runner_merge([]) == []


class TestEscalation:
    def test_raises_typed_with_code(self):
        rng = np.random.default_rng(0)
        with pytest.raises(PlanAuditError) as exc:
            assert_shard_plan_clean([rng, rng], [5, 5], total=10)
        assert exc.value.code == "D001"
        assert any(d.code == "D001" for d in exc.value.diagnostics)
