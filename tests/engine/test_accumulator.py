"""StreamingAccumulator: equivalence with the batch formulas, exact merge."""

import numpy as np
import pytest

from repro.engine.accumulator import StreamingAccumulator
from repro.errors import EstimationError
from repro.highsigma.estimators import effective_sample_size, is_estimate


def reference(log_w, fails):
    """The full-history reductions the accumulator must reproduce."""
    p, se = is_estimate(log_w, fails)
    return p, se, effective_sample_size(log_w, fails)


def random_stream(seed, n_batches=20, batch=64, fail_rate=0.2, spread=30.0):
    rng = np.random.default_rng(seed)
    for _ in range(n_batches):
        log_w = rng.uniform(-spread, 2.0, size=batch)
        fails = rng.random(batch) < fail_rate
        yield log_w, fails


class TestStreamingEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_collect_reductions(self, seed):
        acc = StreamingAccumulator()
        all_w, all_f = [], []
        for log_w, fails in random_stream(seed):
            acc.update(log_w, fails)
            all_w.append(log_w)
            all_f.append(fails)
        p_ref, se_ref, ess_ref = reference(np.concatenate(all_w), np.concatenate(all_f))
        p, se = acc.estimate()
        assert p == pytest.approx(p_ref, rel=1e-10)
        assert se == pytest.approx(se_ref, rel=1e-8)
        assert acc.ess() == pytest.approx(ess_ref, rel=1e-10)

    def test_extreme_log_weights_stay_in_log_space(self):
        # Weights at 6 sigma: hundreds of orders of magnitude apart.
        acc = StreamingAccumulator()
        acc.update(np.array([-700.0, -710.0, -2.0]), np.array([True, True, True]))
        p, se = acc.estimate()
        assert p == pytest.approx(np.exp(-2.0) / 3, rel=1e-12)
        assert np.isfinite(se)
        assert acc.ess() == pytest.approx(1.0, rel=1e-6)

    def test_no_failures(self):
        acc = StreamingAccumulator()
        acc.update(np.zeros(10), np.zeros(10, dtype=bool))
        assert acc.estimate() == (0.0, 0.0)
        assert acc.ess() == 0.0

    def test_zero_samples_raise(self):
        with pytest.raises(EstimationError):
            StreamingAccumulator().estimate()

    def test_single_sample_infinite_se(self):
        acc = StreamingAccumulator()
        acc.update(np.array([0.0]), np.array([True]))
        p, se = acc.estimate()
        assert p == pytest.approx(1.0)
        assert se == float("inf")

    def test_shape_mismatch_rejected(self):
        with pytest.raises(EstimationError):
            StreamingAccumulator().update(np.zeros(3), np.zeros(4, dtype=bool))

    def test_counts(self):
        acc = StreamingAccumulator()
        acc.update(np.zeros(8), np.array([True] * 3 + [False] * 5))
        acc.update(np.zeros(4), np.array([False, True, False, False]))
        assert acc.n == 12
        assert acc.n_fail == 4


class TestMerge:
    def test_merge_equals_single_stream(self):
        """Splitting a stream over two accumulators then merging is exact."""
        whole = StreamingAccumulator()
        part_a, part_b = StreamingAccumulator(), StreamingAccumulator()
        for i, (log_w, fails) in enumerate(random_stream(7, n_batches=10)):
            whole.update(log_w, fails)
            (part_a if i < 5 else part_b).update(log_w, fails)
        merged = StreamingAccumulator()
        merged.merge(part_a)
        merged.merge(part_b)
        assert merged.n == whole.n
        assert merged.n_fail == whole.n_fail
        p_m, se_m = merged.estimate()
        p_w, se_w = whole.estimate()
        assert p_m == pytest.approx(p_w, rel=1e-12)
        assert se_m == pytest.approx(se_w, rel=1e-12)
        assert merged.ess() == pytest.approx(whole.ess(), rel=1e-12)

    def test_merge_deterministic_in_order(self):
        """Same parts merged in the same order give bit-identical moments."""
        parts = []
        for seed in (1, 2, 3, 4):
            acc = StreamingAccumulator()
            for log_w, fails in random_stream(seed, n_batches=3):
                acc.update(log_w, fails)
            parts.append(acc)
        merged1, merged2 = StreamingAccumulator(), StreamingAccumulator()
        for p in parts:
            merged1.merge(p)
        for p in parts:
            merged2.merge(p)
        assert merged1.estimate() == merged2.estimate()
        assert merged1.ess() == merged2.ess()

    def test_merge_empty_is_identity(self):
        acc = StreamingAccumulator()
        acc.update(np.array([-1.0, -2.0]), np.array([True, False]))
        before = acc.estimate()
        acc.merge(StreamingAccumulator())
        assert acc.estimate() == before

    def test_pickle_roundtrip(self):
        import pickle

        acc = StreamingAccumulator()
        acc.update(np.array([-1.0, -2.0]), np.array([True, True]))
        clone = pickle.loads(pickle.dumps(acc))
        assert clone.estimate() == acc.estimate()
        assert clone.n == acc.n and clone.n_fail == acc.n_fail


class TestNonFiniteRejection:
    """One NaN or +inf log-weight would silently poison every later
    estimate and every merge; the accumulator refuses them loudly with
    a typed error instead.  -inf stays legal (a zero weight)."""

    def test_nan_failing_log_weight_raises(self):
        acc = StreamingAccumulator()
        with pytest.raises(EstimationError, match="non-finite"):
            acc.update(np.array([-1.0, np.nan]), np.array([True, True]))

    def test_plus_inf_failing_log_weight_raises(self):
        acc = StreamingAccumulator()
        with pytest.raises(EstimationError, match="non-finite"):
            acc.update(np.array([np.inf]), np.array([True]))

    def test_neg_inf_is_legal(self):
        acc = StreamingAccumulator()
        acc.update(np.array([-np.inf, -1.0]), np.array([True, True]))
        p, _ = acc.estimate()
        assert p == pytest.approx(np.exp(-1.0) / 2, rel=1e-12)

    def test_nan_on_non_failing_sample_is_ignored(self):
        # Non-failing contributions are exactly zero; their log-weight
        # never enters the moments, so it may be anything.
        acc = StreamingAccumulator()
        acc.update(np.array([np.nan, -1.0]), np.array([False, True]))
        assert acc.n == 2 and acc.n_fail == 1

    def test_state_unchanged_after_rejected_update(self):
        acc = StreamingAccumulator()
        acc.update(np.array([-1.0]), np.array([True]))
        before = (acc.n, acc.n_fail, acc.estimate())
        with pytest.raises(EstimationError):
            acc.update(np.array([np.nan, -2.0]), np.array([True, True]))
        assert (acc.n, acc.n_fail, acc.estimate()) == before

    def test_merge_refuses_non_finite_moments(self):
        corrupt = StreamingAccumulator()
        corrupt.n, corrupt.n_fail = 4, 1
        corrupt._log_s1 = float("nan")
        clean = StreamingAccumulator()
        clean.update(np.array([-1.0]), np.array([True]))
        with pytest.raises(EstimationError, match="refusing to merge"):
            clean.merge(corrupt)
