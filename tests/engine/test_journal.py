"""RunJournal: checkpoint/resume with an audited admission gate.

Pins the resume contract: a journal-resumed run is **bit-identical** to
its uninterrupted counterpart (replayed shards carry the exact recorded
results; only missing shards execute), and a journal whose recorded plan
does not match the current one is *refused* with a typed
:class:`~repro.errors.JournalError` carrying the new diagnostic codes —
D005 (plan fingerprint mismatch), D006 (duplicate shard records), D007
(shard index outside the plan).  The codes are append-only: D001–D004
still mean what they meant.
"""

import pickle

import numpy as np
import pytest

from repro.engine.journal import RunJournal, plan_fingerprint
from repro.engine.sharding import (
    RetryPolicy,
    ShardedRunner,
    ShardResult,
    fork_available,
    spawn_generators,
    split_budget,
)
from repro.errors import (
    DiagnosticError,
    EstimationError,
    JournalError,
    PlanAuditError,
)
from repro.highsigma.analytic import LinearLimitState

needs_fork = pytest.mark.skipif(not fork_available(), reason="fork start method unavailable")

N_SHARDS = 4
BUDGET = 80


def _task(i, rng, budget):
    return ShardResult(index=i, n_evals=budget, payload=float(rng.standard_normal()))


def _plan(seed=5, n=N_SHARDS, budget=BUDGET):
    return spawn_generators(np.random.default_rng(seed), n), split_budget(budget, n)


class _FailShard:
    """Deterministic interruption: shard `fail_at` raises."""

    def __init__(self, fail_at):
        self.fail_at = fail_at

    def __call__(self, i, rng, budget):
        if i == self.fail_at:
            raise EstimationError(f"interrupted at shard {i}")
        return _task(i, rng, budget)


class TestPlanFingerprint:
    def test_same_plan_same_fingerprint(self):
        rngs_a, budgets = _plan()
        rngs_b, _ = _plan()
        assert plan_fingerprint(rngs_a, budgets) == plan_fingerprint(rngs_b, budgets)

    def test_seed_shards_and_budgets_all_matter(self):
        rngs, budgets = _plan()
        fp = plan_fingerprint(rngs, budgets)
        assert plan_fingerprint(_plan(seed=6)[0], budgets) != fp
        assert plan_fingerprint(*_plan(n=5)) != fp
        assert plan_fingerprint(rngs, split_budget(BUDGET + 1, N_SHARDS)) != fp


class TestJournalRoundtrip:
    def test_records_and_replays(self, tmp_path):
        path = tmp_path / "run.journal"
        rngs, budgets = _plan()
        with RunJournal(path) as journal:
            journal.begin_round(rngs, budgets)
            for i in range(N_SHARDS):
                journal.record(_task(i, np.random.default_rng(i), budgets[i]))
        with RunJournal(path, resume=True) as journal:
            replay = journal.begin_round(_plan()[0], budgets)
        assert sorted(replay) == list(range(N_SHARDS))
        assert journal.rounds == 1

    def test_fresh_open_truncates(self, tmp_path):
        path = tmp_path / "run.journal"
        rngs, budgets = _plan()
        with RunJournal(path) as journal:
            journal.begin_round(rngs, budgets)
            journal.record(_task(0, np.random.default_rng(0), budgets[0]))
        with RunJournal(path) as journal:  # no resume: a fresh run
            assert journal.begin_round(_plan()[0], budgets) == {}

    def test_record_before_begin_round_is_typed(self, tmp_path):
        with RunJournal(tmp_path / "run.journal") as journal:
            with pytest.raises(JournalError, match="begin_round"):
                journal.record(_task(0, np.random.default_rng(0), 1))

    def test_unpicklable_payload_is_typed_and_atomic(self, tmp_path):
        path = tmp_path / "run.journal"
        rngs, budgets = _plan()
        with RunJournal(path) as journal:
            journal.begin_round(rngs, budgets)
            journal.record(_task(0, np.random.default_rng(0), budgets[0]))
            bad = ShardResult(index=1, n_evals=0, payload=lambda: None)
            with pytest.raises(JournalError, match="picklable"):
                journal.record(bad)
        # The failed record left no partial bytes: the file still loads.
        with RunJournal(path, resume=True) as journal:
            assert sorted(journal.begin_round(rngs, budgets)) == [0]

    def test_truncated_tail_tolerated(self, tmp_path):
        path = tmp_path / "run.journal"
        rngs, budgets = _plan()
        with RunJournal(path) as journal:
            journal.begin_round(rngs, budgets)
            for i in range(N_SHARDS):
                journal.record(_task(i, np.random.default_rng(i), budgets[i]))
        with open(path, "ab") as fh:  # crash mid-append
            fh.write(pickle.dumps(("shard", "x", None))[:10])
        with RunJournal(path, resume=True) as journal:
            assert sorted(journal.begin_round(rngs, budgets)) == list(range(N_SHARDS))


class TestResumeBitIdentity:
    def test_interrupted_run_resumes_bit_identical(self, tmp_path):
        path = tmp_path / "run.journal"
        rngs, budgets = _plan()
        baseline = [
            r.payload for r in ShardedRunner(workers=1).run_shards(_task, rngs, budgets)
        ]

        with RunJournal(path) as journal:
            runner = ShardedRunner(workers=1, journal=journal)
            with pytest.raises(EstimationError, match="interrupted"):
                runner.run_shards(
                    _FailShard(2), _plan()[0], budgets,
                    total=BUDGET, parent=np.random.default_rng(5),
                )

        with RunJournal(path, resume=True) as journal:
            runner = ShardedRunner(workers=1, journal=journal)
            out = runner.run_shards(
                _task, _plan()[0], budgets,
                total=BUDGET, parent=np.random.default_rng(5),
            )
        assert [r.payload for r in out] == baseline
        # Shards 0 and 1 were journaled before the interruption and
        # replayed, not re-executed.
        assert runner.last_diagnostics["replayed"] == 2

    @needs_fork
    def test_pooled_resume_bit_identical(self, tmp_path):
        path = tmp_path / "run.journal"
        rngs, budgets = _plan(seed=9)
        baseline = [
            r.payload for r in ShardedRunner(workers=1).run_shards(_task, rngs, budgets)
        ]
        with RunJournal(path) as journal:
            runner = ShardedRunner(workers=2, journal=journal)
            first = runner.run_shards(
                _task, _plan(seed=9)[0], budgets,
                total=BUDGET, parent=np.random.default_rng(9),
            )
        with RunJournal(path, resume=True) as journal:
            runner = ShardedRunner(workers=2, journal=journal)
            resumed = runner.run_shards(
                _task, _plan(seed=9)[0], budgets,
                total=BUDGET, parent=np.random.default_rng(9),
            )
        assert [r.payload for r in first] == baseline
        assert [r.payload for r in resumed] == baseline
        # Everything replayed: the resumed run executed zero shards.
        assert runner.last_diagnostics["replayed"] == N_SHARDS
        assert runner.last_mode == "in-process"

    def test_replayed_evals_credited_to_limit_state(self, tmp_path):
        path = tmp_path / "run.journal"
        ls = LinearLimitState(beta=3.0, dim=4)

        def task(i, rng, budget):
            before = ls.n_evals
            ls.fails_batch(rng.standard_normal((budget, 4)))
            return ShardResult(index=i, n_evals=ls.n_evals - before, payload=None)

        rngs, budgets = _plan(seed=3)
        with RunJournal(path) as journal:
            ShardedRunner(workers=1, journal=journal).run_shards(
                task, rngs, budgets, limit_state=ls,
                total=BUDGET, parent=np.random.default_rng(3),
            )
        assert ls.n_evals == BUDGET
        ls2 = LinearLimitState(beta=3.0, dim=4)
        with RunJournal(path, resume=True) as journal:
            ShardedRunner(workers=1, journal=journal).run_shards(
                task, _plan(seed=3)[0], budgets, limit_state=ls2,
                total=BUDGET, parent=np.random.default_rng(3),
            )
        # Replayed shards never ran, but their recorded evals reconcile.
        assert ls2.n_evals == BUDGET

    def test_validator_rejects_journaled_corruption(self, tmp_path):
        """A recorded-but-corrupt shard is re-executed, not replayed."""
        from repro.engine.chaos import reject_non_finite

        path = tmp_path / "run.journal"
        rngs, budgets = _plan()
        with RunJournal(path) as journal:
            journal.begin_round(rngs, budgets)
            journal.record(ShardResult(index=0, n_evals=0, payload=float("nan")))
        with RunJournal(path, resume=True) as journal:
            runner = ShardedRunner(
                workers=1, journal=journal,
                retry=RetryPolicy(validate=reject_non_finite),
            )
            out = runner.run_shards(
                _task, _plan()[0], budgets,
                total=BUDGET, parent=np.random.default_rng(5),
            )
        assert runner.last_diagnostics["replayed"] == 0
        assert not any(np.isnan(r.payload) for r in out)
        # Re-executing a journaled index must not append a duplicate
        # record — the journal stays loadable (no D006) afterwards.
        with RunJournal(path, resume=True) as journal:
            replay = journal.begin_round(_plan()[0], budgets)
        assert sorted(replay) == list(range(N_SHARDS))


class TestResumeRefusal:
    def _journal_with_round(self, path, seed=5):
        rngs, budgets = _plan(seed=seed)
        with RunJournal(path) as journal:
            journal.begin_round(rngs, budgets)
            for i in range(N_SHARDS):
                journal.record(_task(i, np.random.default_rng(i), budgets[i]))
        return budgets

    def test_mismatched_plan_refused_d005(self, tmp_path):
        path = tmp_path / "run.journal"
        budgets = self._journal_with_round(path)
        with RunJournal(path, resume=True) as journal:
            with pytest.raises(JournalError) as excinfo:
                journal.begin_round(_plan(seed=6)[0], budgets)  # different seed
        err = excinfo.value
        assert err.code == "D005"
        assert isinstance(err, DiagnosticError)
        assert isinstance(err, EstimationError)
        assert any(d.code == "D005" for d in err.diagnostics)

    def test_mismatched_budget_split_refused_d005(self, tmp_path):
        path = tmp_path / "run.journal"
        self._journal_with_round(path)
        with RunJournal(path, resume=True) as journal:
            with pytest.raises(JournalError, match="D005"):
                journal.begin_round(_plan()[0], split_budget(BUDGET + 4, N_SHARDS))

    def test_duplicate_record_refused_d006(self, tmp_path):
        path = tmp_path / "run.journal"
        rngs, budgets = _plan()
        fp = plan_fingerprint(rngs, budgets)
        with open(path, "wb") as fh:
            fh.write(pickle.dumps(("plan", fp, N_SHARDS)))
            rec = _task(1, np.random.default_rng(1), budgets[1])
            fh.write(pickle.dumps(("shard", fp, rec)))
            fh.write(pickle.dumps(("shard", fp, rec)))
        with pytest.raises(JournalError) as excinfo:
            RunJournal(path, resume=True)
        assert excinfo.value.code == "D006"

    def test_out_of_range_index_refused_d007(self, tmp_path):
        path = tmp_path / "run.journal"
        rngs, budgets = _plan()
        fp = plan_fingerprint(rngs, budgets)
        with open(path, "wb") as fh:
            fh.write(pickle.dumps(("plan", fp, N_SHARDS)))
            fh.write(
                pickle.dumps(
                    ("shard", fp, ShardResult(index=99, n_evals=0, payload=0.0))
                )
            )
        with pytest.raises(JournalError) as excinfo:
            RunJournal(path, resume=True)
        assert excinfo.value.code == "D007"

    def test_orphan_shard_record_refused(self, tmp_path):
        path = tmp_path / "run.journal"
        with open(path, "wb") as fh:
            fh.write(
                pickle.dumps(
                    ("shard", "deadbeef", ShardResult(index=0, n_evals=0, payload=0.0))
                )
            )
        with pytest.raises(JournalError, match="unknown"):
            RunJournal(path, resume=True)

    def test_journaled_plan_must_pass_shard_plan_audit(self, tmp_path):
        """The journal gate composes with the existing plan audit: a
        dirty plan (reused stream) is refused before any replay."""
        path = tmp_path / "run.journal"
        rng = np.random.default_rng(0)
        rngs = [rng, rng]  # D001: the same stream twice
        with RunJournal(path) as journal:
            runner = ShardedRunner(workers=1, journal=journal)
            with pytest.raises(PlanAuditError):
                runner.run_shards(_task, rngs, [1, 1])


class TestMultiRound:
    def test_rounds_journal_independently(self, tmp_path):
        """Main round + top-up round land as distinct fingerprints and
        both replay on resume (the estimator's two-round shape)."""
        path = tmp_path / "run.journal"
        parent_a = np.random.default_rng(11)
        rngs1 = spawn_generators(parent_a, N_SHARDS)
        rngs2 = spawn_generators(parent_a, N_SHARDS)  # spawn keys advance
        budgets = split_budget(BUDGET, N_SHARDS)
        assert plan_fingerprint(rngs1, budgets) != plan_fingerprint(rngs2, budgets)

        with RunJournal(path) as journal:
            runner = ShardedRunner(workers=1, journal=journal)
            first = runner.run_shards(
                _task, rngs1, budgets, total=BUDGET, parent=parent_a
            )
            second = runner.run_shards(
                _task, rngs2, budgets, total=BUDGET, parent=parent_a
            )

        parent_b = np.random.default_rng(11)
        with RunJournal(path, resume=True) as journal:
            assert journal.rounds == 2
            runner = ShardedRunner(workers=1, journal=journal)
            r1 = runner.run_shards(
                _task, spawn_generators(parent_b, N_SHARDS), budgets,
                total=BUDGET, parent=parent_b,
            )
            assert runner.last_diagnostics["replayed"] == N_SHARDS
            r2 = runner.run_shards(
                _task, spawn_generators(parent_b, N_SHARDS), budgets,
                total=BUDGET, parent=parent_b,
            )
            assert runner.last_diagnostics["replayed"] == N_SHARDS
        assert [r.payload for r in r1] == [r.payload for r in first]
        assert [r.payload for r in r2] == [r.payload for r in second]

    def test_round_order_mismatch_refused(self, tmp_path):
        """Positional matching: replaying round 1's plan as round 0 is a
        different run shape and is refused (D005)."""
        path = tmp_path / "run.journal"
        parent = np.random.default_rng(11)
        rngs1 = spawn_generators(parent, N_SHARDS)
        rngs2 = spawn_generators(parent, N_SHARDS)
        budgets = split_budget(BUDGET, N_SHARDS)
        with RunJournal(path) as journal:
            journal.begin_round(rngs1, budgets)
            journal.record(_task(0, np.random.default_rng(0), budgets[0]))
            journal.begin_round(rngs2, budgets)
            journal.record(_task(0, np.random.default_rng(0), budgets[0]))
        with RunJournal(path, resume=True) as journal:
            with pytest.raises(JournalError, match="D005"):
                journal.begin_round(rngs2, budgets)  # round 1's plan first
