"""ShardedRunner: determinism across worker counts, exact reconciliation.

The engine's contract is that ``workers`` is a pure speed knob: with the
shard plan pinned (``n_shards``), every statistic — ``p_fail``,
``std_err``, ``ess``, ``n_evals``, failure counts — must be bit-for-bit
identical whether the shards run in-process or on a fork pool.
"""

import numpy as np
import pytest

from repro.engine.sharding import (
    ShardedRunner,
    ShardResult,
    fork_available,
    spawn_generators,
    split_budget,
)
from repro.errors import EstimationError
from repro.highsigma.analytic import LinearLimitState
from repro.highsigma.estimators import MeanShiftISCore
from repro.highsigma.mc import MonteCarloEstimator
from repro.highsigma.sss import ScaledSigmaSampling

needs_fork = pytest.mark.skipif(not fork_available(), reason="fork start method unavailable")


class TestSplitBudget:
    def test_even_split(self):
        assert split_budget(100, 4) == [25, 25, 25, 25]

    def test_remainder_to_lowest_indices(self):
        assert split_budget(10, 4) == [3, 3, 2, 2]

    def test_total_preserved(self):
        for total in (0, 1, 7, 4097):
            for shards in (1, 2, 3, 8):
                assert sum(split_budget(total, shards)) == total

    def test_invalid(self):
        with pytest.raises(EstimationError):
            split_budget(10, 0)
        with pytest.raises(EstimationError):
            split_budget(-1, 2)


class TestSpawnGenerators:
    def test_deterministic_and_independent(self):
        a = spawn_generators(np.random.default_rng(42), 3)
        b = spawn_generators(np.random.default_rng(42), 3)
        draws_a = [g.standard_normal(4) for g in a]
        draws_b = [g.standard_normal(4) for g in b]
        for x, y in zip(draws_a, draws_b):
            np.testing.assert_array_equal(x, y)
        # Streams differ from each other.
        assert not np.allclose(draws_a[0], draws_a[1])


class TestRunnerPlumbing:
    @staticmethod
    def _task(i, rng, budget):
        return ShardResult(index=i, n_evals=budget, payload=float(rng.standard_normal()))

    def test_serial_matches_pool_results(self):
        rngs1 = spawn_generators(np.random.default_rng(0), 4)
        rngs2 = spawn_generators(np.random.default_rng(0), 4)
        budgets = split_budget(100, 4)
        serial = ShardedRunner(workers=1).run_shards(self._task, rngs1, budgets)
        pooled = ShardedRunner(workers=4).run_shards(self._task, rngs2, budgets)
        assert [r.payload for r in serial] == [r.payload for r in pooled]
        assert [r.index for r in pooled] == [0, 1, 2, 3]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(EstimationError):
            ShardedRunner().run_shards(self._task, spawn_generators(np.random.default_rng(0), 2), [1])

    @needs_fork
    def test_eval_reconciliation_after_pool(self):
        ls = LinearLimitState(beta=3.0, dim=4)

        def task(i, rng, budget):
            before = ls.n_evals
            ls.fails_batch(rng.standard_normal((budget, 4)))
            return ShardResult(index=i, n_evals=ls.n_evals - before, payload=None)

        rngs = spawn_generators(np.random.default_rng(1), 4)
        ShardedRunner(workers=4).run_shards(task, rngs, [10, 10, 10, 10], limit_state=ls)
        # Children billed their own copies; the runner must credit the parent.
        assert ls.n_evals == 40


def _core_result(workers, n_shards, sampler="random"):
    ls = LinearLimitState(beta=4.0, dim=6)
    core = MeanShiftISCore(
        ls,
        shifts=[4.0 * ls.a],
        n_max=4096,
        batch_size=256,
        target_rel_err=None,
        sampler=sampler,
        workers=workers,
        n_shards=n_shards,
    )
    res = core.run(np.random.default_rng(123), method="test")
    return res, ls.n_evals


class TestShardedCoreDeterminism:
    @needs_fork
    def test_workers4_bitwise_equals_workers1(self):
        """The ISSUE's acceptance criterion, verbatim."""
        r1, evals1 = _core_result(workers=1, n_shards=4)
        r4, evals4 = _core_result(workers=4, n_shards=4)
        assert r4.p_fail == r1.p_fail
        assert r4.std_err == r1.std_err
        assert r4.ess == r1.ess
        assert r4.n_evals == r1.n_evals
        assert r4.n_failures == r1.n_failures
        assert evals4 == evals1

    @needs_fork
    def test_qmc_sampler_also_deterministic(self):
        r1, _ = _core_result(workers=1, n_shards=2, sampler="qmc")
        r2, _ = _core_result(workers=2, n_shards=2, sampler="qmc")
        assert r2.p_fail == r1.p_fail
        assert r2.std_err == r1.std_err

    def test_sharded_estimate_is_sane(self):
        ls = LinearLimitState(beta=4.0, dim=6)
        core = MeanShiftISCore(
            ls, shifts=[4.0 * ls.a], n_max=8000, target_rel_err=None, n_shards=4
        )
        res = core.run(np.random.default_rng(5), method="test")
        assert res.p_fail == pytest.approx(ls.exact_pfail(), rel=0.15)
        assert res.diagnostics["n_shards"] == 4

    def test_sharded_early_stopping_active(self):
        """The sqrt(N)-scaled shard target keeps early stopping alive: an
        easy workload must stop well short of the budget, meeting the
        global target on the merged moments, instead of silently
        exhausting the budget because no shard could reach the global
        target on its 1/N of the samples."""
        ls = LinearLimitState(beta=3.0, dim=4)
        core = MeanShiftISCore(
            ls, shifts=[3.0 * ls.a], n_max=50000, batch_size=256,
            target_rel_err=0.1, n_shards=4,
        )
        res = core.run(np.random.default_rng(9), method="test")
        assert res.converged
        assert res.n_evals < 50000
        assert res.rel_err <= 0.1

    @needs_fork
    def test_early_stopping_bit_identical_across_workers(self):
        def run(workers):
            ls = LinearLimitState(beta=3.0, dim=4)
            core = MeanShiftISCore(
                ls, shifts=[3.0 * ls.a], n_max=50000, batch_size=256,
                target_rel_err=0.1, workers=workers, n_shards=4,
            )
            return core.run(np.random.default_rng(9), method="test")

        r1, r4 = run(1), run(4)
        assert (r1.p_fail, r1.std_err, r1.n_evals) == (r4.p_fail, r4.std_err, r4.n_evals)

    def test_budget_respected_across_shards(self):
        ls = LinearLimitState(beta=3.0, dim=4)
        core = MeanShiftISCore(
            ls, shifts=[3.0 * ls.a], n_max=1000, target_rel_err=None, n_shards=3
        )
        res = core.run(np.random.default_rng(2), method="test")
        assert res.n_evals == 1000
        assert ls.n_evals == 1000


class TestShardedMonteCarlo:
    @needs_fork
    def test_workers_bit_identical(self):
        def run(workers):
            ls = LinearLimitState(beta=2.0, dim=3)
            est = MonteCarloEstimator(
                ls, n_max=20000, batch_size=2048, target_rel_err=None,
                workers=workers, n_shards=4,
            )
            return est.run(np.random.default_rng(11)), ls.n_evals

        r1, e1 = run(1)
        r4, e4 = run(4)
        assert r4.p_fail == r1.p_fail
        assert r4.std_err == r1.std_err
        assert r4.n_evals == r1.n_evals == e1 == e4
        assert r4.n_failures == r1.n_failures

    def test_sharded_mc_accuracy(self):
        ls = LinearLimitState(beta=2.0, dim=3)
        est = MonteCarloEstimator(ls, n_max=40000, target_rel_err=None, n_shards=4)
        res = est.run(np.random.default_rng(3))
        assert res.p_fail == pytest.approx(ls.exact_pfail(), rel=0.1)


class TestShardedSss:
    @needs_fork
    def test_workers_bit_identical(self):
        def run(workers):
            ls = LinearLimitState(beta=3.0, dim=4)
            est = ScaledSigmaSampling(
                ls, n_per_scale=1500, n_bootstrap=50, workers=workers, n_shards=4
            )
            return est.run(np.random.default_rng(17)), ls.n_evals

        r1, e1 = run(1)
        r4, e4 = run(4)
        assert r4.p_fail == r1.p_fail
        assert r4.std_err == r1.std_err
        assert r4.n_evals == r1.n_evals == e1 == e4
        assert r4.diagnostics["counts"] == r1.diagnostics["counts"]
