"""ShardedRunner: determinism across worker counts, exact reconciliation.

The engine's contract is that ``workers`` is a pure speed knob: with the
shard plan pinned (``n_shards``), every statistic — ``p_fail``,
``std_err``, ``ess``, ``n_evals``, failure counts — must be bit-for-bit
identical whether the shards run in-process or on a fork pool.
"""

import os
import pickle

import numpy as np
import pytest

from repro.engine.sharding import (
    ShardedRunner,
    ShardResult,
    fork_available,
    run_sharded,
    spawn_available,
    spawn_generators,
    split_budget,
)
from repro.errors import EstimationError
from repro.highsigma.analytic import LinearLimitState
from repro.highsigma.estimators import MeanShiftISCore
from repro.highsigma.mc import MonteCarloEstimator
from repro.highsigma.sss import ScaledSigmaSampling

needs_fork = pytest.mark.skipif(not fork_available(), reason="fork start method unavailable")
needs_spawn = pytest.mark.skipif(not spawn_available(), reason="spawn start method unavailable")


class _PicklableTask:
    """Module-level task class: picklable payload for the spawn path."""

    def __call__(self, i, rng, budget):
        return ShardResult(
            index=i, n_evals=budget, payload=float(rng.standard_normal())
        )


class TestSplitBudget:
    def test_even_split(self):
        assert split_budget(100, 4) == [25, 25, 25, 25]

    def test_remainder_to_lowest_indices(self):
        assert split_budget(10, 4) == [3, 3, 2, 2]

    def test_total_preserved(self):
        for total in (0, 1, 7, 4097):
            for shards in (1, 2, 3, 8):
                assert sum(split_budget(total, shards)) == total

    def test_invalid(self):
        with pytest.raises(EstimationError):
            split_budget(10, 0)
        with pytest.raises(EstimationError):
            split_budget(-1, 2)


class TestSpawnGenerators:
    def test_deterministic_and_independent(self):
        a = spawn_generators(np.random.default_rng(42), 3)
        b = spawn_generators(np.random.default_rng(42), 3)
        draws_a = [g.standard_normal(4) for g in a]
        draws_b = [g.standard_normal(4) for g in b]
        for x, y in zip(draws_a, draws_b):
            np.testing.assert_array_equal(x, y)
        # Streams differ from each other.
        assert not np.allclose(draws_a[0], draws_a[1])


class TestRunnerPlumbing:
    @staticmethod
    def _task(i, rng, budget):
        return ShardResult(index=i, n_evals=budget, payload=float(rng.standard_normal()))

    def test_serial_matches_pool_results(self):
        rngs1 = spawn_generators(np.random.default_rng(0), 4)
        rngs2 = spawn_generators(np.random.default_rng(0), 4)
        budgets = split_budget(100, 4)
        serial = ShardedRunner(workers=1).run_shards(self._task, rngs1, budgets)
        pooled = ShardedRunner(workers=4).run_shards(self._task, rngs2, budgets)
        assert [r.payload for r in serial] == [r.payload for r in pooled]
        assert [r.index for r in pooled] == [0, 1, 2, 3]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(EstimationError):
            ShardedRunner().run_shards(self._task, spawn_generators(np.random.default_rng(0), 2), [1])

    @needs_fork
    def test_eval_reconciliation_after_pool(self):
        ls = LinearLimitState(beta=3.0, dim=4)

        def task(i, rng, budget):
            before = ls.n_evals
            ls.fails_batch(rng.standard_normal((budget, 4)))
            return ShardResult(index=i, n_evals=ls.n_evals - before, payload=None)

        rngs = spawn_generators(np.random.default_rng(1), 4)
        ShardedRunner(workers=4).run_shards(task, rngs, [10, 10, 10, 10], limit_state=ls)
        # Children billed their own copies; the runner must credit the parent.
        assert ls.n_evals == 40


class TestPersistentPool:
    """Persistent fork pools: pure speed knob, results and invariants
    (1-4 in ROADMAP.md) unchanged; lifecycle owned by the caller."""

    @staticmethod
    def _pid_task(i, rng, budget):
        return ShardResult(
            index=i, n_evals=budget,
            payload=(os.getpid(), float(rng.standard_normal())),
        )

    @needs_fork
    def test_pool_reused_for_equivalent_task(self):
        ls = LinearLimitState(beta=3.0, dim=4)

        def shard_fn(rng, budget):
            ls.fails_batch(rng.standard_normal((budget, 4)))
            return os.getpid()

        with ShardedRunner(workers=2, persistent=True) as runner:
            run_sharded(shard_fn, np.random.default_rng(0), 2, 20, 2, ls, runner=runner)
            pool_first = runner._pool
            run_sharded(shard_fn, np.random.default_rng(1), 2, 20, 2, ls, runner=runner)
            assert runner._pool is pool_first  # no respawn for the same task
        assert runner._pool is None  # context exit closed the pool

    @needs_fork
    def test_task_change_respawns_pool(self):
        with ShardedRunner(workers=2, persistent=True) as runner:
            rngs = spawn_generators(np.random.default_rng(0), 2)
            runner.run_shards(self._pid_task, rngs, [1, 1])
            pool_first = runner._pool

            def other_task(i, rng, budget):
                return ShardResult(index=i, n_evals=0, payload="other")

            out = runner.run_shards(other_task, spawn_generators(np.random.default_rng(0), 2), [1, 1])
            assert runner._pool is not pool_first
            assert [r.payload for r in out] == ["other", "other"]

    @needs_fork
    def test_persistent_results_bit_identical_to_fresh(self):
        def run(runner):
            rngs = spawn_generators(np.random.default_rng(7), 4)
            return [
                r.payload[1]
                for r in runner.run_shards(self._pid_task, rngs, split_budget(40, 4))
            ]

        fresh = run(ShardedRunner(workers=4))
        with ShardedRunner(workers=4, persistent=True) as persistent:
            first = run(persistent)
            second = run(persistent)
        assert fresh == first == second

    @needs_fork
    def test_eval_reconciliation_with_persistent_pool(self):
        ls = LinearLimitState(beta=3.0, dim=4)

        def shard_fn(rng, budget):
            ls.fails_batch(rng.standard_normal((budget, 4)))
            return None

        with ShardedRunner(workers=2, persistent=True) as runner:
            run_sharded(shard_fn, np.random.default_rng(3), 2, 30, 2, ls, runner=runner)
            run_sharded(shard_fn, np.random.default_rng(4), 2, 30, 2, ls, runner=runner)
        assert ls.n_evals == 60

    @needs_fork
    def test_estimator_runs_share_one_pool(self):
        """The 'many small runs' case the ROADMAP names: repeated run()
        calls of one estimator keep one pool and stay bit-identical to
        fresh-pool runs."""
        ls = LinearLimitState(beta=4.0, dim=6)
        with ShardedRunner(workers=2, persistent=True) as runner:
            core = MeanShiftISCore(
                ls, shifts=[4.0 * ls.a], n_max=2048, batch_size=256,
                target_rel_err=None, workers=2, n_shards=4, runner=runner,
            )
            r1 = core.run(np.random.default_rng(21), method="test")
            pool = runner._pool
            r2 = core.run(np.random.default_rng(21), method="test")
            assert runner._pool is pool
        baseline = MeanShiftISCore(
            LinearLimitState(beta=4.0, dim=6),
            shifts=[4.0 * ls.a], n_max=2048, batch_size=256,
            target_rel_err=None, workers=2, n_shards=4,
        ).run(np.random.default_rng(21), method="test")
        assert r1.p_fail == r2.p_fail == baseline.p_fail
        assert r1.std_err == r2.std_err == baseline.std_err

    @needs_fork
    def test_late_fork_still_resolves_registered_task(self):
        """The Pool replaces a recycled/dead worker by forking from the
        parent *later* than the original pool fork; such a child must
        still resolve the task.  The property that makes that work is
        that the registry entry stays registered for the pool's whole
        lifetime (regression: a single published-task slot was cleared
        right after the original fork, so late forks inherited nothing).
        Exercised here by forking a fresh child after the first run and
        invoking the worker entry point with the live pool's key."""
        from repro.engine import sharding

        with ShardedRunner(workers=2, persistent=True) as runner:
            rngs = spawn_generators(np.random.default_rng(0), 2)
            first = runner.run_shards(self._pid_task, rngs, [1, 1])
            key = runner._pool_key
            assert key in sharding._POOL_TASKS

            ctx = __import__("multiprocessing").get_context("fork")
            parent_conn, child_conn = ctx.Pipe()

            def late_child(conn):
                rng = spawn_generators(np.random.default_rng(0), 2)[0]
                res = sharding._invoke_shard((key, 0, rng, 1))
                conn.send(res.payload[1])

            proc = ctx.Process(target=late_child, args=(child_conn,))
            proc.start()
            proc.join(timeout=30)
            assert parent_conn.poll(1)
            assert parent_conn.recv() == first[0].payload[1]

    def test_close_is_idempotent_and_serial_path_unaffected(self):
        runner = ShardedRunner(workers=1, persistent=True)
        rngs = spawn_generators(np.random.default_rng(0), 2)
        out = runner.run_shards(self._pid_task, rngs, [1, 1])
        assert len(out) == 2 and runner._pool is None
        runner.close()
        runner.close()


class TestSpawnPath:
    """Spawn-safe execution: platforms without ``fork`` get a real pool
    for picklable task payloads, and a *loud* in-process fallback (with
    ``last_mode`` recording the truth) for unpicklable ones."""

    @needs_spawn
    def test_spawn_bit_identical_to_in_process(self):
        task = _PicklableTask()
        budgets = split_budget(40, 3)
        serial = ShardedRunner(workers=1).run_shards(
            task, spawn_generators(np.random.default_rng(0), 3), budgets
        )
        spawn_runner = ShardedRunner(workers=3, start_method="spawn")
        pooled = spawn_runner.run_shards(
            task, spawn_generators(np.random.default_rng(0), 3), budgets
        )
        assert spawn_runner.last_mode == "spawn"
        assert [r.payload for r in serial] == [r.payload for r in pooled]
        assert [r.index for r in pooled] == [0, 1, 2]

    @needs_spawn
    def test_spawn_estimator_matches_serial(self):
        """The analytic limit states are picklable (bound-method metrics),
        so a whole estimator stack crosses the spawn pipe and the result
        stays bit-identical to the in-process plan."""
        def run(runner, workers):
            ls = LinearLimitState(beta=4.0, dim=6)
            core = MeanShiftISCore(
                ls, shifts=[4.0 * ls.a], n_max=1024, batch_size=256,
                target_rel_err=None, workers=workers, n_shards=2, runner=runner,
            )
            return core.run(np.random.default_rng(11), method="test"), ls

        assert pickle.dumps(LinearLimitState(beta=4.0, dim=6))
        spawn_runner = ShardedRunner(workers=2, start_method="spawn")
        r_spawn, ls_spawn = run(spawn_runner, workers=2)
        assert spawn_runner.last_mode == "spawn"
        r_serial, ls_serial = run(None, workers=1)
        assert r_spawn.p_fail == r_serial.p_fail
        assert r_spawn.std_err == r_serial.std_err
        # Eval accounting reconciles across the spawn pipe too.
        assert ls_spawn.n_evals == ls_serial.n_evals == r_spawn.n_evals

    @needs_spawn
    def test_unpicklable_task_falls_back_loudly(self):
        captured = []

        def closure_task(i, rng, budget):  # local function: not picklable
            return ShardResult(index=i, n_evals=0, payload=captured.append(i))

        runner = ShardedRunner(workers=2, start_method="spawn")
        rngs = spawn_generators(np.random.default_rng(0), 2)
        with pytest.warns(RuntimeWarning, match="not picklable"):
            out = runner.run_shards(closure_task, rngs, [1, 1])
        assert runner.last_mode == "in-process"
        assert len(out) == 2 and captured == [0, 1]

    @needs_spawn
    def test_persistent_spawn_pool_reused(self):
        task = _PicklableTask()
        with ShardedRunner(workers=2, persistent=True, start_method="spawn") as runner:
            rngs = spawn_generators(np.random.default_rng(1), 2)
            runner.run_shards(task, rngs, [1, 1])
            pool = runner._pool
            runner.run_shards(task, spawn_generators(np.random.default_rng(2), 2), [1, 1])
            assert runner._pool is pool
        assert runner._pool is None

    def test_invalid_start_method_rejected(self):
        with pytest.raises(EstimationError):
            ShardedRunner(start_method="threads")


class TestCooperativeTopUp:
    """A sharded run that misses the global target with stranded shard
    budget runs one top-up round instead of giving up."""

    # The trigger needs a marginal budget: most shards stop at the
    # sqrt(8)-scaled local target while the stragglers exhaust their
    # slice, so the merge misses the global target with budget stranded.
    # The seeds below are pinned to configurations where that happens
    # (the whole pipeline is deterministic per seed).

    def _make_core(self, workers=1):
        ls = LinearLimitState(beta=4.0, dim=6)
        return ls, MeanShiftISCore(
            ls, shifts=[4.0 * ls.a], n_max=4000, batch_size=64,
            target_rel_err=0.035, workers=workers, n_shards=8,
        )

    def test_topup_consumes_stranded_budget(self):
        ls, core = self._make_core()
        res = core.run(np.random.default_rng(5), method="test")
        assert res.diagnostics["topup_samples"] > 0
        # The stranded budget was spent and bought global convergence.
        assert res.n_evals == 4000
        assert res.converged
        assert res.rel_err <= 0.035

    def test_no_topup_when_untargeted(self):
        ls = LinearLimitState(beta=3.0, dim=4)
        core = MeanShiftISCore(
            ls, shifts=[3.0 * ls.a], n_max=4000, target_rel_err=None, n_shards=4
        )
        res = core.run(np.random.default_rng(1), method="test")
        assert res.diagnostics["topup_samples"] == 0
        assert res.n_evals == 4000

    @needs_fork
    def test_topup_bit_identical_across_workers(self):
        def run(workers):
            _, core = self._make_core(workers=workers)
            return core.run(np.random.default_rng(5), method="test")

        r1, r4 = run(1), run(4)
        assert r1.diagnostics["topup_samples"] == r4.diagnostics["topup_samples"] > 0
        assert (r1.p_fail, r1.std_err, r1.n_evals) == (r4.p_fail, r4.std_err, r4.n_evals)

    def test_mc_topup(self):
        ls = LinearLimitState(beta=2.5, dim=3)
        est = MonteCarloEstimator(
            ls, n_max=16000, batch_size=256, target_rel_err=0.1, n_shards=8
        )
        res = est.run(np.random.default_rng(6))
        assert res.diagnostics["topup_samples"] > 0
        assert res.converged
        assert res.n_evals == 16000
        assert ls.n_evals == res.n_evals


def _core_result(workers, n_shards, sampler="random"):
    ls = LinearLimitState(beta=4.0, dim=6)
    core = MeanShiftISCore(
        ls,
        shifts=[4.0 * ls.a],
        n_max=4096,
        batch_size=256,
        target_rel_err=None,
        sampler=sampler,
        workers=workers,
        n_shards=n_shards,
    )
    res = core.run(np.random.default_rng(123), method="test")
    return res, ls.n_evals


class TestShardedCoreDeterminism:
    @needs_fork
    def test_workers4_bitwise_equals_workers1(self):
        """The ISSUE's acceptance criterion, verbatim."""
        r1, evals1 = _core_result(workers=1, n_shards=4)
        r4, evals4 = _core_result(workers=4, n_shards=4)
        assert r4.p_fail == r1.p_fail
        assert r4.std_err == r1.std_err
        assert r4.ess == r1.ess
        assert r4.n_evals == r1.n_evals
        assert r4.n_failures == r1.n_failures
        assert evals4 == evals1

    @needs_fork
    def test_qmc_sampler_also_deterministic(self):
        r1, _ = _core_result(workers=1, n_shards=2, sampler="qmc")
        r2, _ = _core_result(workers=2, n_shards=2, sampler="qmc")
        assert r2.p_fail == r1.p_fail
        assert r2.std_err == r1.std_err

    def test_sharded_estimate_is_sane(self):
        ls = LinearLimitState(beta=4.0, dim=6)
        core = MeanShiftISCore(
            ls, shifts=[4.0 * ls.a], n_max=8000, target_rel_err=None, n_shards=4
        )
        res = core.run(np.random.default_rng(5), method="test")
        assert res.p_fail == pytest.approx(ls.exact_pfail(), rel=0.15)
        assert res.diagnostics["n_shards"] == 4

    def test_sharded_early_stopping_active(self):
        """The sqrt(N)-scaled shard target keeps early stopping alive: an
        easy workload must stop well short of the budget, meeting the
        global target on the merged moments, instead of silently
        exhausting the budget because no shard could reach the global
        target on its 1/N of the samples."""
        ls = LinearLimitState(beta=3.0, dim=4)
        core = MeanShiftISCore(
            ls, shifts=[3.0 * ls.a], n_max=50000, batch_size=256,
            target_rel_err=0.1, n_shards=4,
        )
        res = core.run(np.random.default_rng(9), method="test")
        assert res.converged
        assert res.n_evals < 50000
        assert res.rel_err <= 0.1

    @needs_fork
    def test_early_stopping_bit_identical_across_workers(self):
        def run(workers):
            ls = LinearLimitState(beta=3.0, dim=4)
            core = MeanShiftISCore(
                ls, shifts=[3.0 * ls.a], n_max=50000, batch_size=256,
                target_rel_err=0.1, workers=workers, n_shards=4,
            )
            return core.run(np.random.default_rng(9), method="test")

        r1, r4 = run(1), run(4)
        assert (r1.p_fail, r1.std_err, r1.n_evals) == (r4.p_fail, r4.std_err, r4.n_evals)

    def test_budget_respected_across_shards(self):
        ls = LinearLimitState(beta=3.0, dim=4)
        core = MeanShiftISCore(
            ls, shifts=[3.0 * ls.a], n_max=1000, target_rel_err=None, n_shards=3
        )
        res = core.run(np.random.default_rng(2), method="test")
        assert res.n_evals == 1000
        assert ls.n_evals == 1000


class TestZeroBudgetShards:
    """Zero-budget shards never ship to the pool: an empty job buys no
    samples but costs a pickle round-trip and a worker slot.  The plan —
    and therefore the statistics — is unchanged; skipping is pure
    dispatch economics."""

    @staticmethod
    def _pid_task(i, rng, budget):
        return ShardResult(
            index=i, n_evals=budget,
            payload=(os.getpid(), float(rng.standard_normal())),
        )

    @needs_fork
    def test_empty_shards_run_in_process(self):
        rngs = spawn_generators(np.random.default_rng(0), 4)
        budgets = [3, 0, 2, 0]  # budget < n_shards territory
        runner = ShardedRunner(workers=2)
        out = runner.run_shards(self._pid_task, rngs, budgets)
        parent = os.getpid()
        assert [r.payload[0] == parent for r in out] == [False, True, False, True]
        assert runner.last_diagnostics["skipped_empty"] == 2

    @needs_fork
    def test_bit_identity_with_empty_shards(self):
        budgets = [2, 0, 1, 0, 0]
        serial = ShardedRunner(workers=1).run_shards(
            self._pid_task, spawn_generators(np.random.default_rng(3), 5), budgets
        )
        pooled = ShardedRunner(workers=2).run_shards(
            self._pid_task, spawn_generators(np.random.default_rng(3), 5), budgets
        )
        assert [r.payload[1] for r in serial] == [r.payload[1] for r in pooled]

    @needs_fork
    def test_skip_empty_false_ships_everything(self):
        """Search-stage tasks pass budgets that are placeholders, not
        sample counts; ``skip_empty=False`` keeps them pooled."""
        rngs = spawn_generators(np.random.default_rng(0), 2)
        runner = ShardedRunner(workers=2)
        out = runner.run_shards(self._pid_task, rngs, [0, 0], skip_empty=False)
        parent = os.getpid()
        assert all(r.payload[0] != parent for r in out)
        assert runner.last_diagnostics["skipped_empty"] == 0

    def test_all_empty_runs_in_process_without_pool(self):
        rngs = spawn_generators(np.random.default_rng(0), 3)
        runner = ShardedRunner(workers=3)
        out = runner.run_shards(self._pid_task, rngs, [0, 0, 0])
        assert runner.last_mode == "in-process"
        assert runner._pool is None
        assert [r.index for r in out] == [0, 1, 2]


class TestPoolFailureLifecycle:
    """A failed run must never hand its (dead, hung or interrupted) pool
    to the next call — regression coverage for the close-on-error path."""

    @staticmethod
    def _task(i, rng, budget):
        return ShardResult(index=i, n_evals=budget, payload=float(rng.standard_normal()))

    @needs_fork
    def test_persistent_pool_recovers_after_worker_death(self):
        """Kill a worker with no retry budget: the run fails typed, the
        broken pool is closed, and the *same* persistent runner's next
        run respawns transparently and is bit-identical to serial."""
        from repro.engine.chaos import FaultSpec
        from repro.errors import ShardExecutionError

        budgets = split_budget(40, 4)
        baseline = [
            r.payload
            for r in ShardedRunner(workers=1).run_shards(
                self._task, spawn_generators(np.random.default_rng(7), 4), budgets
            )
        ]
        with ShardedRunner(workers=2, persistent=True) as runner:
            runner.chaos = (FaultSpec("kill", shard=1),)
            with pytest.raises(ShardExecutionError):
                runner.run_shards(
                    self._task, spawn_generators(np.random.default_rng(7), 4), budgets
                )
            assert runner._pool is None  # broken pool not kept around
            runner.chaos = ()
            out = runner.run_shards(
                self._task, spawn_generators(np.random.default_rng(7), 4), budgets
            )
            assert [r.payload for r in out] == baseline

    @needs_fork
    def test_keyboard_interrupt_cleans_pool_and_registry(self):
        from repro.engine import sharding

        runner = ShardedRunner(workers=2, persistent=True)

        def interrupt(inflight):
            raise KeyboardInterrupt

        runner._wait_tick = interrupt
        rngs = spawn_generators(np.random.default_rng(0), 4)
        with pytest.raises(KeyboardInterrupt):
            runner.run_shards(self._task, rngs, split_budget(40, 4))
        assert runner._pool is None
        assert runner._pool_key is None
        # No orphaned task snapshot left in the module registry.
        assert all(
            task is not self._task for task in sharding._POOL_TASKS.values()
        )

    @needs_fork
    def test_unpicklable_result_payload_is_readable_typed_error(self):
        """A payload that cannot cross the result pipe surfaces as a
        typed ShardExecutionError naming the shard — not a hang or a
        bare MaybeEncodingError from pool internals."""
        from repro.errors import ShardExecutionError

        def bad_payload_task(i, rng, budget):
            return ShardResult(index=i, n_evals=0, payload=lambda: None)

        runner = ShardedRunner(workers=2)
        rngs = spawn_generators(np.random.default_rng(0), 2)
        with pytest.raises(ShardExecutionError) as excinfo:
            runner.run_shards(bad_payload_task, rngs, [1, 1])
        assert excinfo.value.shard_index in (0, 1)
        assert excinfo.value.attempts == 1
        assert runner._pool is None

    @needs_fork
    def test_eval_reconciliation_across_retried_shards(self):
        """The retried attempt consumed evals in a worker that died with
        them; only the successful attempt's count reconciles, so the
        parent total matches a fault-free run exactly."""
        from repro.engine.chaos import FaultSpec
        from repro.engine.sharding import RetryPolicy

        ls = LinearLimitState(beta=3.0, dim=4)

        def task(i, rng, budget):
            before = ls.n_evals
            ls.fails_batch(rng.standard_normal((budget, 4)))
            return ShardResult(index=i, n_evals=ls.n_evals - before, payload=None)

        runner = ShardedRunner(
            workers=2,
            retry=RetryPolicy(max_attempts=3),
            chaos=[FaultSpec("kill", shard=1)],
        )
        rngs = spawn_generators(np.random.default_rng(1), 4)
        runner.run_shards(task, rngs, [10, 10, 10, 10], limit_state=ls)
        assert runner.last_mode == "fork"
        assert ls.n_evals == 40


class TestShardedMonteCarlo:
    @needs_fork
    def test_workers_bit_identical(self):
        def run(workers):
            ls = LinearLimitState(beta=2.0, dim=3)
            est = MonteCarloEstimator(
                ls, n_max=20000, batch_size=2048, target_rel_err=None,
                workers=workers, n_shards=4,
            )
            return est.run(np.random.default_rng(11)), ls.n_evals

        r1, e1 = run(1)
        r4, e4 = run(4)
        assert r4.p_fail == r1.p_fail
        assert r4.std_err == r1.std_err
        assert r4.n_evals == r1.n_evals == e1 == e4
        assert r4.n_failures == r1.n_failures

    def test_sharded_mc_accuracy(self):
        ls = LinearLimitState(beta=2.0, dim=3)
        est = MonteCarloEstimator(ls, n_max=40000, target_rel_err=None, n_shards=4)
        res = est.run(np.random.default_rng(3))
        assert res.p_fail == pytest.approx(ls.exact_pfail(), rel=0.1)


class TestShardedSss:
    @needs_fork
    def test_workers_bit_identical(self):
        def run(workers):
            ls = LinearLimitState(beta=3.0, dim=4)
            est = ScaledSigmaSampling(
                ls, n_per_scale=1500, n_bootstrap=50, workers=workers, n_shards=4
            )
            return est.run(np.random.default_rng(17)), ls.n_evals

        r1, e1 = run(1)
        r4, e4 = run(4)
        assert r4.p_fail == r1.p_fail
        assert r4.std_err == r1.std_err
        assert r4.n_evals == r1.n_evals == e1 == e4
        assert r4.diagnostics["counts"] == r1.diagnostics["counts"]
