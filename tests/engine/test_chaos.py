"""Fault injection: a faulted run under retry merges bit-identical.

The acceptance criterion of the fault-tolerance layer, pinned per fault
kind and with every kind at once: inject a fault (worker kill, hang past
the shard timeout, transient exception, NaN corruption) into a specific
``(shard, attempt)`` execution, give the runner a
:class:`~repro.engine.sharding.RetryPolicy`, and the merged results must
be **bit-identical** to a fault-free ``workers=1`` run of the same shard
plan — because a retry re-runs the identical ``(index, stream, budget)``
job.  Faults fire *after* the inner task completes (evals consumed, RNG
advanced, result discarded), the adversarial case for determinism.
"""

import warnings

import numpy as np
import pytest

from repro.engine.chaos import ChaosTask, FaultInjected, FaultSpec, reject_non_finite
from repro.engine.sharding import (
    RetryPolicy,
    ShardedRunner,
    ShardResult,
    fork_available,
    spawn_generators,
    split_budget,
)
from repro.errors import EstimationError, ShardExecutionError
from repro.highsigma.analytic import LinearLimitState
from repro.highsigma.estimators import MeanShiftISCore

needs_fork = pytest.mark.skipif(not fork_available(), reason="fork start method unavailable")

N_SHARDS = 4
BUDGET = 80


def _task(i, rng, budget):
    return ShardResult(index=i, n_evals=budget, payload=float(rng.standard_normal()))


def _plan(seed=123):
    return spawn_generators(np.random.default_rng(seed), N_SHARDS), split_budget(BUDGET, N_SHARDS)


def _baseline():
    rngs, budgets = _plan()
    return [r.payload for r in ShardedRunner(workers=1).run_shards(_task, rngs, budgets)]


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(EstimationError, match="unknown fault kind"):
            FaultSpec("explode", shard=0)

    def test_negative_fields_rejected(self):
        with pytest.raises(EstimationError):
            FaultSpec("raise", shard=-1)
        with pytest.raises(EstimationError):
            FaultSpec("raise", shard=0, attempt=-1)
        with pytest.raises(EstimationError):
            FaultSpec("delay", shard=0, seconds=-1.0)

    def test_matches_keys_on_shard_and_attempt(self):
        f = FaultSpec("raise", shard=2, attempt=1)
        assert f.matches(2, 1)
        assert not f.matches(2, 0)
        assert not f.matches(1, 1)


class TestChaosTaskWrapping:
    def test_chaos_task_is_comparable_and_picklable(self):
        import pickle

        faults = (FaultSpec("raise", shard=0),)
        a = ChaosTask(_task, faults)
        b = ChaosTask(_task, faults)
        assert a == b
        assert a != ChaosTask(_task, (FaultSpec("raise", shard=1),))
        clone = pickle.loads(pickle.dumps(a))
        assert clone == a

    def test_fault_fires_after_inner_task_ran(self):
        """The adversarial ordering: evals are consumed, the stream is
        advanced, and only then is the result discarded."""
        calls = []

        def spy(i, rng, budget):
            calls.append(i)
            return _task(i, rng, budget)

        chaos = ChaosTask(spy, (FaultSpec("raise", shard=0),))
        with pytest.raises(FaultInjected):
            chaos(0, np.random.default_rng(0), 10)
        assert calls == [0]

    def test_kill_downgraded_outside_pool_worker(self):
        """An in-process "kill" must never SIGKILL the caller (the test
        process!) — it downgrades to a FaultInjected exception."""
        chaos = ChaosTask(_task, (FaultSpec("kill", shard=0),))
        with pytest.raises(FaultInjected, match="downgraded"):
            chaos(0, np.random.default_rng(0), 10)


class TestTransientException:
    def test_in_process_retry_bit_identical(self):
        rngs, budgets = _plan()
        runner = ShardedRunner(
            workers=1,
            retry=RetryPolicy(max_attempts=3),
            chaos=[FaultSpec("raise", shard=1)],
        )
        out = [r.payload for r in runner.run_shards(_task, rngs, budgets)]
        assert out == _baseline()
        assert runner.fault_stats["retries"] == 1
        assert runner.last_diagnostics["failures"] == {1: 1}

    def test_in_process_retry_restores_eval_accounting(self):
        ls = LinearLimitState(beta=3.0, dim=4)

        def task(i, rng, budget):
            before = ls.n_evals
            ls.fails_batch(rng.standard_normal((budget, 4)))
            return ShardResult(index=i, n_evals=ls.n_evals - before, payload=None)

        rngs, budgets = _plan()
        runner = ShardedRunner(
            workers=1,
            retry=RetryPolicy(max_attempts=2),
            chaos=[FaultSpec("raise", shard=2)],
        )
        runner.run_shards(task, rngs, budgets, limit_state=ls)
        # The faulted attempt's evals were rolled back; the count matches
        # a fault-free run exactly.
        assert ls.n_evals == BUDGET

    @needs_fork
    def test_pooled_retry_bit_identical(self):
        rngs, budgets = _plan()
        runner = ShardedRunner(
            workers=2,
            retry=RetryPolicy(max_attempts=3),
            chaos=[FaultSpec("raise", shard=0)],
        )
        out = [r.payload for r in runner.run_shards(_task, rngs, budgets)]
        assert out == _baseline()
        assert runner.last_mode == "fork"
        assert runner.fault_stats["retries"] >= 1

    def test_exhausted_retries_raise_typed(self):
        rngs, budgets = _plan()
        runner = ShardedRunner(
            workers=1,
            retry=RetryPolicy(max_attempts=2),
            chaos=[
                FaultSpec("raise", shard=1, attempt=0),
                FaultSpec("raise", shard=1, attempt=1),
            ],
        )
        with pytest.raises(ShardExecutionError) as excinfo:
            runner.run_shards(_task, rngs, budgets)
        err = excinfo.value
        assert isinstance(err, EstimationError)
        assert err.shard_index == 1
        assert err.attempts == 2
        assert isinstance(err.cause, FaultInjected)


class TestWorkerKill:
    @needs_fork
    def test_killed_worker_retried_bit_identical(self):
        rngs, budgets = _plan()
        runner = ShardedRunner(
            workers=2,
            retry=RetryPolicy(max_attempts=3),
            chaos=[FaultSpec("kill", shard=2)],
        )
        out = [r.payload for r in runner.run_shards(_task, rngs, budgets)]
        assert out == _baseline()
        assert runner.fault_stats["worker_deaths"] >= 1
        assert runner.fault_stats["worker_replacements"] >= 1
        assert runner.fault_stats["retries"] >= 1

    @needs_fork
    def test_kill_without_retry_budget_is_typed_error(self):
        rngs, budgets = _plan()
        runner = ShardedRunner(workers=2, chaos=[FaultSpec("kill", shard=0)])
        with pytest.raises(ShardExecutionError):
            runner.run_shards(_task, rngs, budgets)
        # Satellite #1: the failed run closed its pool.
        assert runner._pool is None


class TestTimeoutRecycle:
    @needs_fork
    def test_hung_shard_times_out_and_recycles(self):
        rngs, budgets = _plan()
        runner = ShardedRunner(
            workers=2,
            retry=RetryPolicy(max_attempts=3, timeout=1.5),
            chaos=[FaultSpec("hang", shard=3, seconds=30.0)],
        )
        out = [r.payload for r in runner.run_shards(_task, rngs, budgets)]
        assert out == _baseline()
        assert runner.fault_stats["timeouts"] >= 1
        assert runner.fault_stats["pool_recycles"] >= 1

    def test_in_process_timeout_warns_once(self):
        rngs, budgets = _plan()
        runner = ShardedRunner(workers=1, retry=RetryPolicy(max_attempts=1, timeout=5.0))
        with pytest.warns(RuntimeWarning, match="only enforced for pooled"):
            runner.run_shards(_task, rngs, budgets)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            runner.run_shards(_task, _plan()[0], budgets)


class TestNanCorruption:
    def test_nan_payload_rejected_and_retried(self):
        rngs, budgets = _plan()
        runner = ShardedRunner(
            workers=1,
            retry=RetryPolicy(max_attempts=2, validate=reject_non_finite),
            chaos=[FaultSpec("nan", shard=1)],
        )
        out = [r.payload for r in runner.run_shards(_task, rngs, budgets)]
        assert out == _baseline()
        assert runner.fault_stats["retries"] == 1

    def test_nan_without_validator_passes_through(self):
        """The validator is the defense — chaos alone only corrupts."""
        rngs, budgets = _plan()
        runner = ShardedRunner(workers=1, chaos=[FaultSpec("nan", shard=1)])
        out = [r.payload for r in runner.run_shards(_task, rngs, budgets)]
        assert np.isnan(out[1])

    def test_reject_non_finite_scans_nested_payloads(self):
        ok = ShardResult(index=0, n_evals=0, payload={"a": [1.0, (2.0, -np.inf)]})
        assert reject_non_finite(ok) is None
        bad = ShardResult(index=0, n_evals=0, payload={"a": [1.0, (np.nan,)]})
        assert "NaN" in reject_non_finite(bad) or "nan" in reject_non_finite(bad)
        arr = ShardResult(index=0, n_evals=0, payload=np.array([0.0, np.inf]))
        assert reject_non_finite(arr) is not None

    def test_neg_inf_is_legal(self):
        """-inf is the accumulator's log-space zero, never corruption."""
        res = ShardResult(index=0, n_evals=0, payload=float("-inf"))
        assert reject_non_finite(res) is None


class TestDelay:
    def test_delay_returns_result_unchanged(self):
        rngs, budgets = _plan()
        runner = ShardedRunner(
            workers=1, chaos=[FaultSpec("delay", shard=0, seconds=0.05)]
        )
        out = [r.payload for r in runner.run_shards(_task, rngs, budgets)]
        assert out == _baseline()


class TestAllFaultsAtOnce:
    """The ISSUE acceptance test: one worker killed, one shard timed out,
    one transient exception — each retried — and the merged estimate is
    bit-identical to the fault-free ``workers=1`` run of the same plan."""

    @needs_fork
    def test_estimator_under_full_chaos_bit_identical(self):
        def make_core(ls, runner, workers):
            return MeanShiftISCore(
                ls, shifts=[4.0 * ls.a], n_max=2048, batch_size=256,
                target_rel_err=None, workers=workers, n_shards=4, runner=runner,
            )

        # Fault schedule staggered so every recovery path fires: the hang
        # starts immediately and times out at 1.5s (worker-death recovery
        # would otherwise conservatively re-dispatch the hung shard before
        # its deadline); the kill is pushed past the timeout by keying it
        # to attempt 1 behind a transient failure and a 2s backoff.
        ls_chaos = LinearLimitState(beta=4.0, dim=6)
        runner = ShardedRunner(
            workers=2,
            retry=RetryPolicy(
                max_attempts=4, timeout=1.5, backoff=2.0,
                validate=reject_non_finite,
            ),
            chaos=[
                FaultSpec("hang", shard=1, seconds=30.0),
                FaultSpec("raise", shard=2),
                FaultSpec("raise", shard=3, attempt=0),
                FaultSpec("kill", shard=3, attempt=1),
            ],
        )
        r_chaos = make_core(ls_chaos, runner, 2).run(
            np.random.default_rng(21), method="test"
        )

        ls_clean = LinearLimitState(beta=4.0, dim=6)
        r_clean = make_core(ls_clean, None, 1).run(
            np.random.default_rng(21), method="test"
        )

        assert r_chaos.p_fail == r_clean.p_fail
        assert r_chaos.std_err == r_clean.std_err
        assert r_chaos.n_evals == r_clean.n_evals
        assert ls_chaos.n_evals == ls_clean.n_evals
        stats = runner.fault_stats
        assert stats["timeouts"] >= 1
        assert stats["pool_recycles"] >= 1
        assert stats["worker_deaths"] >= 1
        assert stats["retries"] >= 4

    def test_diagnostics_record_attempt_wall_clock(self):
        rngs, budgets = _plan()
        runner = ShardedRunner(
            workers=1,
            retry=RetryPolicy(max_attempts=2),
            chaos=[FaultSpec("raise", shard=0)],
        )
        runner.run_shards(_task, rngs, budgets)
        walls = runner.last_diagnostics["attempt_wall"]
        assert len(walls[0]) == 2  # faulted attempt + successful retry
        assert all(w >= 0 for attempts in walls.values() for w in attempts)
        assert runner.last_diagnostics["mode"] == "in-process"
        assert runner.last_diagnostics["shards"] == N_SHARDS


class TestBackoff:
    def test_backoff_schedule_is_exponential(self):
        p = RetryPolicy(max_attempts=4, backoff=0.1)
        assert p.delay(0) == 0.0
        assert p.delay(1) == pytest.approx(0.1)
        assert p.delay(2) == pytest.approx(0.2)
        assert p.delay(3) == pytest.approx(0.4)

    def test_policy_validation(self):
        with pytest.raises(EstimationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(EstimationError):
            RetryPolicy(timeout=0.0)
        with pytest.raises(EstimationError):
            RetryPolicy(backoff=-1.0)
