"""Plain Monte Carlo estimator tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EstimationError
from repro.highsigma.analytic import LinearLimitState
from repro.highsigma.mc import MonteCarloEstimator, wilson_interval


class TestWilson:
    def test_contains_point_estimate(self):
        lo, hi = wilson_interval(5, 100)
        assert lo < 0.05 < hi

    def test_zero_failures_still_informative(self):
        lo, hi = wilson_interval(0, 1000)
        assert lo == 0.0
        assert 0 < hi < 0.01

    def test_all_failures(self):
        # Wilson pulls both ends away from the degenerate 1.0 estimate —
        # the upper end stays below 1 (unlike the Wald interval).
        lo, hi = wilson_interval(100, 100)
        assert 0.95 < hi <= 1.0
        assert lo > 0.9

    def test_invalid_inputs(self):
        with pytest.raises(EstimationError):
            wilson_interval(1, 0)
        with pytest.raises(EstimationError):
            wilson_interval(5, 3)

    @given(st.integers(min_value=0, max_value=100), st.integers(min_value=100, max_value=10000))
    @settings(max_examples=40)
    def test_interval_ordering_and_bounds(self, k, n):
        lo, hi = wilson_interval(k, n)
        assert 0.0 <= lo <= hi <= 1.0

    def test_narrows_with_n(self):
        lo1, hi1 = wilson_interval(10, 100)
        lo2, hi2 = wilson_interval(100, 1000)
        assert (hi2 - lo2) < (hi1 - lo1)


class TestMonteCarloEstimator:
    def test_accuracy_at_low_sigma(self):
        ls = LinearLimitState(beta=2.0, dim=4)
        mc = MonteCarloEstimator(ls, n_max=150000, target_rel_err=0.05)
        res = mc.run(np.random.default_rng(0))
        assert res.p_fail == pytest.approx(ls.exact_pfail(), rel=0.15)

    def test_early_stop_saves_budget(self):
        ls = LinearLimitState(beta=1.0, dim=3)  # p ~ 0.16, easy
        mc = MonteCarloEstimator(ls, n_max=1_000_000, target_rel_err=0.1)
        res = mc.run(np.random.default_rng(1))
        assert res.converged
        assert res.n_evals < 10000

    def test_budget_exhaustion_flagged(self):
        ls = LinearLimitState(beta=5.0, dim=3)  # invisible to 10k samples
        mc = MonteCarloEstimator(ls, n_max=10000, target_rel_err=0.1)
        res = mc.run(np.random.default_rng(2))
        assert not res.converged
        assert res.n_failures == 0
        assert res.p_fail == 0.0

    def test_diagnostics_carry_wilson(self):
        ls = LinearLimitState(beta=1.5, dim=2)
        res = MonteCarloEstimator(ls, n_max=20000).run(np.random.default_rng(3))
        lo, hi = res.diagnostics["wilson_ci"]
        assert lo <= res.p_fail <= hi

    def test_required_samples_formula(self):
        n = MonteCarloEstimator.required_samples(1e-9, rel_err=0.1)
        assert n == pytest.approx(1e11, rel=0.01)
        with pytest.raises(EstimationError):
            MonteCarloEstimator.required_samples(0.0)

    def test_deterministic_given_seed(self):
        ls = LinearLimitState(beta=2.0, dim=3)
        r1 = MonteCarloEstimator(ls, n_max=5000, target_rel_err=None).run(
            np.random.default_rng(42)
        )
        r2 = MonteCarloEstimator(ls, n_max=5000, target_rel_err=None).run(
            np.random.default_rng(42)
        )
        assert r1.p_fail == r2.p_fail
