"""FORM/SORM tests against geometries with known answers."""

import numpy as np
import pytest
from scipy import stats

from repro.errors import EstimationError
from repro.highsigma.analytic import LinearLimitState, QuadraticLimitState
from repro.highsigma.form import form_estimate, sorm_estimate, tangent_hessian_curvatures
from repro.highsigma.limitstate import LimitState
from repro.highsigma.mpfp import MpfpSearch


class TestForm:
    def test_exact_on_hyperplane(self):
        ls = LinearLimitState(beta=4.5, dim=6)
        res = form_estimate(ls)
        assert res.p_fail == pytest.approx(ls.exact_pfail(), rel=1e-3)
        assert res.method == "form"

    def test_reuses_precomputed_mpfp(self):
        ls = LinearLimitState(beta=4.0, dim=5)
        mpfp = MpfpSearch(ls).run()
        evals = ls.n_evals
        res = form_estimate(ls, mpfp=mpfp)
        assert ls.n_evals == evals  # no extra simulations
        assert res.diagnostics["beta"] == pytest.approx(4.0, abs=0.02)

    def test_biased_on_curved_boundary(self):
        ls = QuadraticLimitState(beta=5.0, dim=10, kappa=0.2)
        res = form_estimate(ls)
        # FORM ignores curvature: overestimates for kappa > 0.
        assert res.p_fail > 3 * ls.exact_pfail()

    def test_meaningless_without_boundary(self):
        ls = LimitState(fn=lambda u: 0.0, spec=1.0, dim=3, direction="upper",
                        cache=False)
        with pytest.raises(EstimationError):
            form_estimate(ls)


class TestCurvatures:
    def test_quadratic_curvatures_recovered(self):
        kappa = 0.15
        ls = QuadraticLimitState(beta=5.0, dim=8, kappa=kappa)
        mpfp = MpfpSearch(ls).run()
        curv = tangent_hessian_curvatures(ls, mpfp.u_star)
        np.testing.assert_allclose(curv, kappa, atol=0.02)

    def test_flat_boundary_zero_curvature(self):
        ls = LinearLimitState(beta=4.0, dim=5)
        mpfp = MpfpSearch(ls).run()
        curv = tangent_hessian_curvatures(ls, mpfp.u_star)
        np.testing.assert_allclose(curv, 0.0, atol=1e-6)

    def test_origin_mpfp_rejected(self):
        ls = LinearLimitState(beta=4.0, dim=5)
        with pytest.raises(EstimationError):
            tangent_hessian_curvatures(ls, np.zeros(5))


class TestSorm:
    def test_corrects_curvature_bias(self):
        ls = QuadraticLimitState(beta=5.0, dim=12, kappa=0.15)
        exact = ls.exact_pfail()
        ls_f = QuadraticLimitState(beta=5.0, dim=12, kappa=0.15)
        form = form_estimate(ls_f)
        ls_s = QuadraticLimitState(beta=5.0, dim=12, kappa=0.15)
        sorm = sorm_estimate(ls_s)
        err_form = abs(np.log10(form.p_fail / exact))
        err_sorm = abs(np.log10(sorm.p_fail / exact))
        assert err_sorm < err_form / 3

    def test_matches_breitung_closed_form(self):
        beta, kappa, dim = 5.0, 0.15, 12
        ls = QuadraticLimitState(beta=beta, dim=dim, kappa=kappa)
        sorm = sorm_estimate(ls)
        breitung = stats.norm.sf(beta) / (1 + beta * kappa) ** ((dim - 1) / 2)
        assert sorm.p_fail == pytest.approx(breitung, rel=0.05)

    def test_negative_curvature_raises_probability(self):
        ls_neg = QuadraticLimitState(beta=4.0, dim=6, kappa=-0.05)
        sorm = sorm_estimate(ls_neg)
        assert sorm.p_fail > stats.norm.sf(4.0)

    def test_reduces_to_form_on_hyperplane(self):
        ls = LinearLimitState(beta=4.0, dim=5)
        sorm = sorm_estimate(ls)
        assert sorm.p_fail == pytest.approx(stats.norm.sf(4.0), rel=1e-3)

    def test_cost_scales_quadratically_not_exponentially(self):
        ls = QuadraticLimitState(beta=4.0, dim=10, kappa=0.1)
        res = sorm_estimate(ls)
        # Search + normal derivative + tangent Hessian stencil.
        assert res.n_evals < 600
