"""Cross-entropy adaptive IS tests."""

import numpy as np
import pytest

from repro.errors import SearchError
from repro.highsigma.analytic import (
    LinearLimitState,
    QuadraticLimitState,
    SramSurrogateLimitState,
)
from repro.highsigma.ce import CrossEntropyIS
from repro.highsigma.limitstate import LimitState


class TestAdaptation:
    def test_mean_converges_to_failure_region(self):
        ls = LinearLimitState(beta=4.0, dim=6)
        ce = CrossEntropyIS(ls, n_per_level=400)
        mean, cov, levels = ce.adapt(np.random.default_rng(0))
        # The adapted mean must sit near the failure boundary along a.
        assert float(mean @ ls.a) > 3.0
        assert 2 <= levels <= 15

    def test_cov_adapts_to_boundary_shape(self):
        # On a hyperplane the elite cloud flattens along the normal.
        ls = LinearLimitState(beta=4.0, dim=4)
        ce = CrossEntropyIS(ls, n_per_level=600, adapt_cov=True)
        mean, cov, _ = ce.adapt(np.random.default_rng(1))
        normal_var = cov[0]          # a = e_0 for the default direction
        tangent_var = np.mean(cov[1:])
        assert normal_var < tangent_var

    def test_never_failing_raises(self):
        ls = LimitState(fn=lambda u: 0.0, spec=1.0, dim=3, direction="upper",
                        cache=False)
        ce = CrossEntropyIS(ls, n_per_level=100, max_levels=3)
        with pytest.raises(SearchError):
            ce.adapt(np.random.default_rng(2))

    def test_parameter_validation(self):
        ls = LinearLimitState(beta=3.0, dim=3)
        with pytest.raises(SearchError):
            CrossEntropyIS(ls, elite_fraction=1.5)
        with pytest.raises(SearchError):
            CrossEntropyIS(ls, smoothing=0.0)


class TestEstimation:
    def test_linear_four_sigma(self):
        ls = LinearLimitState(beta=4.0, dim=6)
        ce = CrossEntropyIS(ls, n_max=5000, target_rel_err=0.08)
        res = ce.run(np.random.default_rng(3))
        assert res.p_fail == pytest.approx(ls.exact_pfail(), rel=0.3)
        assert res.method == "ce"
        assert res.diagnostics["levels"] >= 2

    def test_curved_boundary(self):
        ls = QuadraticLimitState(beta=4.5, dim=8, kappa=0.1)
        ce = CrossEntropyIS(ls, n_max=6000, target_rel_err=0.08)
        res = ce.run(np.random.default_rng(4))
        assert res.p_fail == pytest.approx(ls.exact_pfail(), rel=0.5)

    def test_adaptation_cost_billed(self):
        ls = LinearLimitState(beta=4.0, dim=5)
        ce = CrossEntropyIS(ls, n_per_level=300, n_max=512, target_rel_err=None)
        res = ce.run(np.random.default_rng(5))
        assert res.n_evals == ls.n_evals
        assert res.diagnostics["search_evals"] >= 2 * 300

    def test_costlier_search_than_gradient(self):
        # The comparison the paper's cost argument predicts: per-level
        # batches vs a gradient walk.
        from repro.highsigma.gis import GradientImportanceSampling

        ls_ce = SramSurrogateLimitState(
            spec=SramSurrogateLimitState.spec_for_sigma(4.5)
        )
        ce_res = CrossEntropyIS(ls_ce, n_max=256, target_rel_err=None).run(
            np.random.default_rng(6)
        )
        ls_gis = SramSurrogateLimitState(
            spec=SramSurrogateLimitState.spec_for_sigma(4.5)
        )
        gis_res = GradientImportanceSampling(
            ls_gis, n_max=256, target_rel_err=None
        ).run(np.random.default_rng(6))
        assert gis_res.diagnostics["search_evals"] < ce_res.diagnostics["search_evals"]
