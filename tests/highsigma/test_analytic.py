"""Exactness tests for the analytic limit states.

Each closed form is checked against brute-force Monte Carlo at a sigma
level low enough for MC to resolve (2–2.5 sigma), plus structural
properties at high sigma where MC cannot reach.
"""

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.highsigma.analytic import (
    HypersphereLimitState,
    LinearLimitState,
    QuadraticLimitState,
    SramSurrogateLimitState,
    UnionLimitState,
)

N_MC = 400_000
RNG = np.random.default_rng(2024)


def mc_pfail(ls, n=N_MC):
    u = RNG.standard_normal((n, ls.dim))
    return ls.fails_batch(u).mean()


class TestLinear:
    def test_exact_matches_mc(self):
        ls = LinearLimitState(beta=2.0, dim=5)
        assert mc_pfail(ls) == pytest.approx(ls.exact_pfail(), rel=0.05)

    def test_exact_value(self):
        from scipy import stats

        ls = LinearLimitState(beta=4.0, dim=3)
        assert ls.exact_pfail() == pytest.approx(stats.norm.sf(4.0))

    def test_dimension_invariance(self):
        assert LinearLimitState(3.0, 2).exact_pfail() == pytest.approx(
            LinearLimitState(3.0, 50).exact_pfail()
        )

    def test_custom_direction_normalised(self):
        ls = LinearLimitState(beta=2.0, dim=3, direction=[2.0, 0.0, 0.0])
        assert np.linalg.norm(ls.a) == pytest.approx(1.0)
        assert ls.fails(np.array([2.5, 0, 0]))

    def test_exact_gradient(self):
        ls = LinearLimitState(beta=2.0, dim=3)
        np.testing.assert_allclose(ls.gradient(np.zeros(3)), -ls.a)

    def test_invalid_beta(self):
        with pytest.raises(EstimationError):
            LinearLimitState(beta=-1.0, dim=2)


class TestHypersphere:
    def test_exact_matches_mc(self):
        ls = HypersphereLimitState(radius=3.0, dim=4)
        assert mc_pfail(ls) == pytest.approx(ls.exact_pfail(), rel=0.05)

    def test_radial_symmetry(self):
        ls = HypersphereLimitState(radius=2.0, dim=3)
        u = np.array([2.5, 0, 0])
        rot = np.array([0, 0, 2.5])
        assert ls.g(u) == pytest.approx(ls.g(rot))

    def test_probability_grows_with_dim(self):
        # At fixed radius, more dimensions put more mass outside.
        p3 = HypersphereLimitState(4.0, 3).exact_pfail()
        p12 = HypersphereLimitState(4.0, 12).exact_pfail()
        assert p12 > p3


class TestUnion:
    def test_exact_matches_mc(self):
        ls = UnionLimitState([2.0, 2.2], dim=4)
        assert mc_pfail(ls) == pytest.approx(ls.exact_pfail(), rel=0.05)

    def test_inclusion_exclusion(self):
        from scipy import stats

        ls = UnionLimitState([3.0, 3.0], dim=3)
        p1 = stats.norm.sf(3.0)
        assert ls.exact_pfail() == pytest.approx(2 * p1 - p1 * p1, rel=1e-9)

    def test_mpfp_points(self):
        ls = UnionLimitState([3.0, 4.0], dim=3)
        pts = ls.mpfp_points()
        assert pts.shape == (2, 3)
        np.testing.assert_allclose(np.linalg.norm(pts, axis=1), [3.0, 4.0])

    def test_too_many_normals_rejected(self):
        with pytest.raises(EstimationError):
            UnionLimitState([2.0, 2.0, 2.0], dim=2)


class TestQuadratic:
    def test_exact_matches_mc(self):
        ls = QuadraticLimitState(beta=2.0, dim=4, kappa=0.2)
        assert mc_pfail(ls) == pytest.approx(ls.exact_pfail(), rel=0.05)

    def test_positive_curvature_below_form(self):
        from scipy import stats

        ls = QuadraticLimitState(beta=4.0, dim=8, kappa=0.3)
        assert ls.exact_pfail() < stats.norm.sf(4.0)

    def test_negative_curvature_above_form(self):
        from scipy import stats

        ls = QuadraticLimitState(beta=4.0, dim=8, kappa=-0.05)
        assert ls.exact_pfail() > stats.norm.sf(4.0)

    def test_zero_curvature_equals_linear(self):
        from scipy import stats

        ls = QuadraticLimitState(beta=3.5, dim=6, kappa=0.0)
        assert ls.exact_pfail() == pytest.approx(stats.norm.sf(3.5), rel=1e-6)

    def test_needs_two_dims(self):
        with pytest.raises(EstimationError):
            QuadraticLimitState(beta=3.0, dim=1)


class TestSramSurrogate:
    def test_exact_matches_mc(self):
        # Pick a spec low enough for MC: ~2.3 sigma.
        spec = SramSurrogateLimitState.spec_for_sigma(2.3)
        ls = SramSurrogateLimitState(spec=spec)
        assert mc_pfail(ls) == pytest.approx(ls.exact_pfail(), rel=0.08)

    def test_spec_for_sigma_placement(self):
        from scipy import stats

        for target in (3.0, 4.0):
            spec = SramSurrogateLimitState.spec_for_sigma(target)
            p = SramSurrogateLimitState(spec=spec).exact_pfail()
            assert p == pytest.approx(stats.norm.sf(target), rel=0.02)

    def test_metric_batch_matches_scalar(self):
        ls = SramSurrogateLimitState(spec=50e-12)
        rng = np.random.default_rng(1)
        ub = rng.normal(size=(20, 6))
        np.testing.assert_allclose(
            ls.g_batch(ub), [ls.g(u) for u in ub], rtol=1e-12
        )

    def test_monotone_in_spec(self):
        p_tight = SramSurrogateLimitState(spec=40e-12).exact_pfail()
        p_loose = SramSurrogateLimitState(spec=60e-12).exact_pfail()
        assert p_tight > p_loose

    def test_negative_curvature_rejected(self):
        with pytest.raises(EstimationError):
            SramSurrogateLimitState(spec=50e-12, b=-1e-12)
