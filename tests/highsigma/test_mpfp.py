"""Gradient MPFP search tests on geometries with known design points."""

import numpy as np
import pytest

from repro.highsigma.analytic import (
    HypersphereLimitState,
    LinearLimitState,
    QuadraticLimitState,
    UnionLimitState,
)
from repro.highsigma.mpfp import MpfpOptions, MpfpSearch


class TestLinearGeometry:
    def test_finds_exact_design_point(self):
        ls = LinearLimitState(beta=4.0, dim=6)
        res = MpfpSearch(ls).run()
        assert res.converged
        assert res.beta == pytest.approx(4.0, abs=0.02)
        np.testing.assert_allclose(res.u_star, 4.0 * ls.a, atol=0.05)

    def test_exact_gradient_converges_faster(self):
        ls_fd = LinearLimitState(beta=4.0, dim=10)
        fd = MpfpSearch(ls_fd).run()
        ls_ex = LinearLimitState(beta=4.0, dim=10)
        exact = MpfpSearch(ls_ex, grad_fn=ls_ex.gradient).run()
        assert exact.converged and fd.converged
        assert exact.n_evals < fd.n_evals

    def test_arbitrary_direction(self):
        direction = np.array([1.0, 2.0, -1.0, 0.5])
        ls = LinearLimitState(beta=3.5, dim=4, direction=direction)
        res = MpfpSearch(ls).run()
        assert res.beta == pytest.approx(3.5, abs=0.02)
        cos = res.u_star @ ls.a / res.beta
        assert cos == pytest.approx(1.0, abs=1e-3)

    def test_eval_count_includes_gradient_cost(self):
        ls = LinearLimitState(beta=4.0, dim=6)
        res = MpfpSearch(ls).run()
        assert res.n_evals == ls.n_evals
        # At least one central gradient (2d) plus line-search points.
        assert res.n_evals >= 2 * 6


class TestCurvedGeometry:
    def test_quadratic_design_point_on_axis(self):
        # For g = beta + k/2 ||u_perp||^2 - u1, the MPFP is exactly
        # (beta, 0, ..., 0) since any perpendicular excursion only hurts.
        ls = QuadraticLimitState(beta=4.5, dim=8, kappa=0.2)
        res = MpfpSearch(ls).run()
        assert res.converged
        assert res.beta == pytest.approx(4.5, abs=0.05)
        np.testing.assert_allclose(res.u_star[1:], 0.0, atol=0.1)

    def test_sphere_radius_found(self):
        ls = HypersphereLimitState(radius=4.0, dim=5)
        # The sphere is a degenerate case (every direction is an MPFP);
        # a perturbed start breaks the symmetry.
        rng = np.random.default_rng(3)
        u0 = rng.standard_normal(5) * 0.1
        res = MpfpSearch(ls).run(u0=u0, rng=rng)
        assert res.beta == pytest.approx(4.0, abs=0.05)

    def test_union_finds_nearest_region_from_biased_start(self):
        ls = UnionLimitState([3.0, 5.0], dim=4)
        res = MpfpSearch(ls).run(u0=np.array([0.5, 0.0, 0.0, 0.0]))
        # Started toward the beta=3 region: must find it, not the 5 one.
        assert res.beta == pytest.approx(3.0, abs=0.05)


class TestOptionsAndModes:
    def test_spsa_mode_reaches_neighbourhood(self):
        ls = LinearLimitState(beta=4.0, dim=6)
        opts = MpfpOptions(grad_mode="spsa", spsa_repeats=16, max_iterations=80,
                           tol_align=0.05)
        res = MpfpSearch(ls, options=opts).run(rng=np.random.default_rng(0))
        # SPSA is noisy; accept a looser neighbourhood of the answer and
        # require the returned point to actually be near the boundary.
        assert res.beta == pytest.approx(4.0, abs=0.6)
        assert abs(res.g_value) < 0.5

    def test_forward_mode_works(self):
        ls = LinearLimitState(beta=3.0, dim=5)
        opts = MpfpOptions(grad_mode="forward")
        res = MpfpSearch(ls, options=opts).run()
        assert res.beta == pytest.approx(3.0, abs=0.05)

    def test_unknown_mode_raises(self):
        from repro.errors import SearchError

        ls = LinearLimitState(beta=3.0, dim=2)
        opts = MpfpOptions(grad_mode="newton")
        with pytest.raises(SearchError):
            MpfpSearch(ls, options=opts).run()

    def test_iteration_cap_returns_unconverged(self):
        ls = QuadraticLimitState(beta=5.0, dim=10, kappa=0.3)
        opts = MpfpOptions(max_iterations=2)
        res = MpfpSearch(ls, options=opts).run()
        assert not res.converged
        assert res.iterations <= 3

    def test_trajectory_recorded(self):
        ls = LinearLimitState(beta=3.0, dim=3)
        res = MpfpSearch(ls).run()
        assert len(res.trajectory) == res.iterations + 1
        u0, g0 = res.trajectory[0]
        assert np.all(u0 == 0.0)
        assert g0 > 0  # nominal design passes

    def test_trajectory_norms_approach_beta(self):
        ls = LinearLimitState(beta=4.0, dim=4)
        res = MpfpSearch(ls).run()
        norms = [np.linalg.norm(u) for u, _ in res.trajectory]
        assert norms[-1] == pytest.approx(4.0, abs=0.05)
