"""Spherical radius-search IS baseline tests."""

import numpy as np
import pytest

from repro.errors import SearchError
from repro.highsigma.analytic import HypersphereLimitState, LinearLimitState
from repro.highsigma.limitstate import LimitState
from repro.highsigma.spherical import SphericalSearchIS


class TestSearch:
    def test_sphere_geometry_is_ideal_case(self):
        # For a radially symmetric failure region every direction works,
        # so the search lands on the boundary radius exactly.
        ls = HypersphereLimitState(radius=3.0, dim=5)
        sph = SphericalSearchIS(ls, n_directions=16)
        centre, radius = sph.search_centre(np.random.default_rng(0))
        assert radius == pytest.approx(3.0, abs=0.1)
        assert np.linalg.norm(centre) == pytest.approx(radius)

    def test_linear_case_overshoots_beta(self):
        # For a hyperplane the first failing direction is almost never
        # the exact MPFP direction: the found radius exceeds beta.
        ls = LinearLimitState(beta=3.0, dim=8)
        sph = SphericalSearchIS(ls, n_directions=32)
        _centre, radius = sph.search_centre(np.random.default_rng(1))
        assert radius >= 3.0 - 0.1

    def test_escalation_widens_direction_set(self):
        # Narrow failure cone in high dimension: 4 directions miss it,
        # escalation must rescue the search.
        ls = LinearLimitState(beta=3.0, dim=10)
        sph = SphericalSearchIS(ls, n_directions=4, r_max=4.0, max_escalations=2)
        _centre, radius = sph.search_centre(np.random.default_rng(2))
        assert radius > 2.5

    def test_gives_up_eventually(self):
        ls = LimitState(fn=lambda u: 0.0, spec=1.0, dim=3, direction="upper",
                        name="never-fails", cache=False)
        sph = SphericalSearchIS(ls, n_directions=4, r_max=3.0, max_escalations=1)
        with pytest.raises(SearchError):
            sph.search_centre(np.random.default_rng(3))

    def test_failure_message_reports_values_actually_used(self):
        # One escalation quadruples the directions (4 -> 16) and widens
        # the ceiling (3.0 -> 4.5); the error must report *those* values,
        # not the never-attempted next escalation's 64 / 6.75.
        ls = LimitState(fn=lambda u: 0.0, spec=1.0, dim=3, direction="upper",
                        name="never-fails", cache=False)
        sph = SphericalSearchIS(ls, n_directions=4, r_max=3.0, max_escalations=1)
        with pytest.raises(SearchError, match=r"radius 4\.5 using 16 directions"):
            sph.search_centre(np.random.default_rng(3))

    def test_smallest_g_direction_selected(self):
        # Two fixed probe directions, both failing at the first shell but
        # with different margins: the bisection must follow the deeper
        # one (the second), not simply the first failing row.
        class FixedDirections:
            def standard_normal(self, shape):
                assert shape == (2, 2)
                return np.array([[1.0, 0.0], [0.0, 1.0]])

        # g(u) = 1 - (u0 + 2 u1): at r=1, dir (1,0) sits exactly on the
        # boundary (g = 0) while dir (0,1) is well inside (g = -1).
        ls = LimitState(
            fn=None, batch_fn=lambda u: 1.0 - (u[:, 0] + 2.0 * u[:, 1]),
            spec=0.0, dim=2, direction="lower", cache=False,
        )
        sph = SphericalSearchIS(ls, n_directions=2, r_start=1.0, r_step=0.5)
        centre, radius = sph.search_centre(FixedDirections())
        np.testing.assert_allclose(centre / radius, [0.0, 1.0], atol=1e-12)


class TestEstimation:
    def test_hypersphere_estimate(self):
        ls = HypersphereLimitState(radius=3.5, dim=4)
        sph = SphericalSearchIS(ls, n_max=8000, target_rel_err=0.1, alpha=0.3)
        res = sph.run(np.random.default_rng(4))
        # A single shifted Gaussian cannot cover a spherical shell well;
        # the defensive component keeps it consistent if slow.  Within
        # a factor of ~2 at this budget.
        assert res.p_fail == pytest.approx(ls.exact_pfail(), rel=1.0)

    def test_search_cost_billed(self):
        ls = LinearLimitState(beta=3.0, dim=5)
        sph = SphericalSearchIS(ls, n_max=512, target_rel_err=None)
        res = sph.run(np.random.default_rng(5))
        assert res.n_evals == ls.n_evals
        assert res.diagnostics["search_evals"] > 0
        assert res.diagnostics["centre_norm"] >= 2.5
