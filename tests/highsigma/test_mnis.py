"""Minimum-norm importance sampling baseline tests."""

import numpy as np
import pytest

from repro.errors import SearchError
from repro.highsigma.analytic import LinearLimitState
from repro.highsigma.limitstate import LimitState
from repro.highsigma.mnis import MinimumNormIS


class TestAccuracy:
    def test_linear_four_sigma(self):
        ls = LinearLimitState(beta=4.0, dim=6)
        mnis = MinimumNormIS(ls, n_presample=1500, presample_scale=2.0,
                             n_max=6000, target_rel_err=0.05)
        res = mnis.run(np.random.default_rng(0))
        assert res.p_fail == pytest.approx(ls.exact_pfail(), rel=0.4)

    def test_centre_norm_near_beta(self):
        ls = LinearLimitState(beta=4.0, dim=6)
        mnis = MinimumNormIS(ls, n_presample=2000, presample_scale=2.0)
        centre = mnis.presample_centre(np.random.default_rng(1))
        # Ray refinement pulls the centre back to the boundary.
        assert np.linalg.norm(centre) == pytest.approx(4.0, abs=0.8)

    def test_ray_refine_reduces_norm(self):
        ls = LinearLimitState(beta=4.0, dim=8)
        raw = MinimumNormIS(ls, n_presample=1500, presample_scale=2.5, ray_refine=False)
        ref = MinimumNormIS(ls, n_presample=1500, presample_scale=2.5, ray_refine=True)
        n_raw = np.linalg.norm(raw.presample_centre(np.random.default_rng(2)))
        n_ref = np.linalg.norm(ref.presample_centre(np.random.default_rng(2)))
        assert n_ref <= n_raw + 1e-9


class TestEscalation:
    def test_scale_escalates_until_failures_found(self):
        # At scale 1.0 a 5-sigma hyperplane is invisible to 500 samples;
        # escalation (x1.5 per retry) must eventually see it.
        ls = LinearLimitState(beta=5.0, dim=4)
        mnis = MinimumNormIS(ls, n_presample=500, presample_scale=1.0,
                             max_retries=5)
        centre = mnis.presample_centre(np.random.default_rng(3))
        assert np.linalg.norm(centre) > 3.0

    def test_gives_up_after_retries(self):
        ls = LimitState(fn=lambda u: 0.0, spec=1.0, dim=3, direction="upper",
                        name="never-fails", cache=False)
        mnis = MinimumNormIS(ls, n_presample=100, max_retries=1)
        with pytest.raises(SearchError):
            mnis.presample_centre(np.random.default_rng(4))

    def test_uniform_mode(self):
        ls = LinearLimitState(beta=3.0, dim=4)
        mnis = MinimumNormIS(ls, n_presample=2000, presample_scale=5.0,
                             presample_mode="uniform", n_max=5000,
                             target_rel_err=0.1)
        res = mnis.run(np.random.default_rng(5))
        assert res.p_fail == pytest.approx(ls.exact_pfail(), rel=0.5)

    def test_bad_mode_rejected(self):
        ls = LinearLimitState(beta=3.0, dim=4)
        with pytest.raises(SearchError):
            MinimumNormIS(ls, presample_mode="magic")


class TestAccounting:
    def test_presampling_billed(self):
        ls = LinearLimitState(beta=3.0, dim=4)
        mnis = MinimumNormIS(ls, n_presample=1000, presample_scale=2.0,
                             n_max=1024, target_rel_err=None)
        res = mnis.run(np.random.default_rng(6))
        assert res.n_evals == ls.n_evals
        assert res.diagnostics["search_evals"] >= 1000

    def test_search_cost_dominates_at_high_sigma(self):
        # The qualitative claim the paper's cost tables make: the blind
        # pre-sampling stage needs far more evaluations than a gradient
        # search on the same problem.
        from repro.highsigma.gis import GradientImportanceSampling

        ls_g = LinearLimitState(beta=5.0, dim=6)
        gis_res = GradientImportanceSampling(ls_g, n_max=512, target_rel_err=None).run(
            np.random.default_rng(7)
        )
        ls_m = LinearLimitState(beta=5.0, dim=6)
        mnis = MinimumNormIS(ls_m, n_presample=1000, presample_scale=1.5,
                             max_retries=6, n_max=512, target_rel_err=None)
        mnis_res = mnis.run(np.random.default_rng(7))
        assert gis_res.diagnostics["search_evals"] < mnis_res.diagnostics["search_evals"]
