"""EstimateResult record tests."""

import pytest

from repro.highsigma.results import EstimateResult


def make(p=1e-6, se=1e-7, **kw):
    defaults = dict(p_fail=p, std_err=se, n_evals=1000, n_failures=50,
                    method="test")
    defaults.update(kw)
    return EstimateResult(**defaults)


class TestDerivedQuantities:
    def test_sigma_level(self):
        from scipy import stats

        r = make(p=stats.norm.sf(4.5))
        assert r.sigma_level == pytest.approx(4.5, abs=1e-9)

    def test_rel_err(self):
        r = make(p=1e-6, se=2e-7)
        assert r.rel_err == pytest.approx(0.2)

    def test_rel_err_of_zero_estimate(self):
        r = make(p=0.0, se=0.0)
        assert r.rel_err == float("inf")

    def test_ci_clipped_to_unit_interval(self):
        r = make(p=1e-8, se=1e-7)
        lo, hi = r.ci()
        assert lo == 0.0
        assert hi > 0

    def test_ci_width_scales_with_z(self):
        r = make()
        lo1, hi1 = r.ci(z=1.0)
        lo2, hi2 = r.ci(z=2.0)
        assert (hi2 - lo2) > (hi1 - lo1)

    def test_log10(self):
        assert make(p=1e-6).log10_p() == pytest.approx(-6.0)
        assert make(p=0.0).log10_p() == float("-inf")


class TestSummary:
    def test_contains_key_fields(self):
        text = make().summary()
        assert "test" in text
        assert "p_fail" in text
        assert "converged" in text

    def test_budget_limited_marker(self):
        text = make(converged=False).summary()
        assert "budget-limited" in text

    def test_diagnostics_default_dict(self):
        r = make()
        r.diagnostics["x"] = 1  # must be a fresh mutable dict per instance
        assert make().diagnostics == {}
