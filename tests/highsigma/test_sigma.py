"""Sigma/yield conversion tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.highsigma.sigma import (
    array_yield,
    cells_per_failure,
    pfail_to_sigma,
    sigma_to_pfail,
)


class TestConversions:
    def test_known_anchors(self):
        assert sigma_to_pfail(3.0) == pytest.approx(1.3499e-3, rel=1e-3)
        assert sigma_to_pfail(6.0) == pytest.approx(9.866e-10, rel=1e-3)
        assert pfail_to_sigma(0.5) == pytest.approx(0.0, abs=1e-12)

    @given(st.floats(min_value=0.0, max_value=8.0))
    @settings(max_examples=50)
    def test_roundtrip(self, sigma):
        assert float(pfail_to_sigma(sigma_to_pfail(sigma))) == pytest.approx(
            sigma, abs=1e-9
        )

    def test_precision_at_high_sigma(self):
        # sf/isf pairing must not lose precision at 7+ sigma.
        assert float(pfail_to_sigma(sigma_to_pfail(7.5))) == pytest.approx(7.5, abs=1e-9)

    def test_vectorised(self):
        sigmas = np.array([3.0, 4.0, 5.0])
        p = sigma_to_pfail(sigmas)
        assert p.shape == (3,)
        assert np.all(np.diff(p) < 0)

    def test_out_of_range_pfail(self):
        assert pfail_to_sigma(0.0) == np.inf
        assert pfail_to_sigma(1.0) == -np.inf


class TestArrayYield:
    def test_perfect_cells(self):
        assert array_yield(0.0, 1 << 20) == 1.0

    def test_one_per_mb_budget(self):
        # p = 1e-6 over 1 M cells -> about one bad cell expected;
        # zero-repair yield is about exp(-1).
        y = array_yield(1e-6, 1e6)
        assert y == pytest.approx(np.exp(-1.0), rel=1e-3)

    def test_repair_increases_yield(self):
        p, n = 2e-6, 1e6
        assert array_yield(p, n, n_repair=4) > array_yield(p, n, n_repair=0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            array_yield(-0.1, 100)
        with pytest.raises(ValueError):
            array_yield(0.5, 0)

    @given(
        st.floats(min_value=1e-12, max_value=1e-3),
        st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=30)
    def test_monotone_in_repair_budget(self, p, k):
        n = 1e6
        assert array_yield(p, n, k) >= array_yield(p, n, k - 1)


class TestCellsPerFailure:
    def test_reciprocal(self):
        assert cells_per_failure(1e-9) == pytest.approx(1e9)

    def test_zero_probability(self):
        assert cells_per_failure(0.0) == np.inf
