"""Scaled-sigma sampling tests: model fit recovery and estimation."""

import numpy as np
import pytest
from scipy import stats

from repro.errors import EstimationError
from repro.highsigma.analytic import LinearLimitState, QuadraticLimitState
from repro.highsigma.sss import ScaledSigmaSampling, fit_sss_model


class TestModelFit:
    def test_exact_recovery_of_synthetic_coefficients(self):
        # Generate log p from the model itself; the weighted LS fit must
        # recover the coefficients exactly (no noise).
        a, b, c = -2.0, 1.5, 8.0
        scales = np.array([1.5, 2.0, 2.5, 3.0, 4.0])
        p = np.exp(a + b * np.log(scales) - c / scales**2)
        coef = fit_sss_model(scales, p, counts=np.full(5, 100.0))
        np.testing.assert_allclose(coef, [a, b, c], rtol=1e-8)

    def test_linear_boundary_theory(self):
        # For a hyperplane at distance beta, P(s) = Phi(-beta/s); the SSS
        # model approximates its log well over a moderate scale range and
        # the extrapolation lands within a factor ~2 of Phi(-beta).
        beta = 4.0
        scales = np.array([1.6, 2.0, 2.5, 3.2, 4.0])
        p = stats.norm.sf(beta / scales)
        coef = fit_sss_model(scales, p, counts=np.full(5, 1000.0))
        p1 = np.exp(coef[0] - coef[2])
        assert abs(np.log10(p1) - np.log10(stats.norm.sf(beta))) < 0.4

    def test_too_few_scales_rejected(self):
        with pytest.raises(EstimationError):
            fit_sss_model(np.array([2.0, 3.0]), np.array([0.01, 0.1]), np.array([5, 5]))


class TestEstimator:
    def test_linear_four_sigma_order_of_magnitude(self):
        ls = LinearLimitState(beta=4.0, dim=6)
        sss = ScaledSigmaSampling(ls, n_per_scale=4000)
        res = sss.run(np.random.default_rng(0))
        # Extrapolation accuracy: within half a decade is a pass (this is
        # the documented weakness vs the IS methods).
        assert abs(np.log10(res.p_fail) - np.log10(ls.exact_pfail())) < 0.7

    def test_counts_and_coefficients_reported(self):
        ls = LinearLimitState(beta=4.0, dim=4)
        res = ScaledSigmaSampling(ls, n_per_scale=2000).run(np.random.default_rng(1))
        assert len(res.diagnostics["counts"]) == 5
        assert len(res.diagnostics["coefficients"]) == 3
        assert res.n_evals == 5 * 2000

    def test_bootstrap_ci_present(self):
        ls = LinearLimitState(beta=3.5, dim=4)
        res = ScaledSigmaSampling(ls, n_per_scale=2000).run(np.random.default_rng(2))
        lo, hi = res.diagnostics["log_p1_ci95"]
        assert lo < np.log(res.p_fail) < hi

    def test_fails_cleanly_when_no_failures(self):
        # Strong positive curvature at high dimension: inflating sigma
        # does not produce failures (the documented SSS blind spot).
        ls = QuadraticLimitState(beta=5.0, dim=12, kappa=0.3)
        sss = ScaledSigmaSampling(ls, n_per_scale=500)
        with pytest.raises(EstimationError):
            sss.run(np.random.default_rng(3))

    def test_scale_validation(self):
        ls = LinearLimitState(beta=3.0, dim=3)
        with pytest.raises(EstimationError):
            ScaledSigmaSampling(ls, scales=(0.9, 2.0, 3.0))

    def test_deterministic_given_seed(self):
        ls = LinearLimitState(beta=3.5, dim=4)
        r1 = ScaledSigmaSampling(ls, n_per_scale=1000).run(np.random.default_rng(7))
        ls.reset_counter()
        r2 = ScaledSigmaSampling(ls, n_per_scale=1000).run(np.random.default_rng(7))
        assert r1.p_fail == r2.p_fail


class TestBootstrapThreshold:
    def test_replicates_apply_min_failures(self, monkeypatch):
        """Regression: bootstrap replicates refit with any ``k_b >= 1``
        while the main fit dropped scales below ``min_failures`` — the
        replicate fits saw noisier scales than the estimate they were
        supposed to calibrate, biasing the error bar."""
        import repro.highsigma.sss as sss_mod

        recorded = []
        real_fit = sss_mod.fit_sss_model

        def recording_fit(scales, p_hat, counts):
            recorded.append(np.asarray(counts, dtype=float).copy())
            return real_fit(scales, p_hat, counts)

        monkeypatch.setattr(sss_mod, "fit_sss_model", recording_fit)

        ls = LinearLimitState(beta=4.0, dim=4)
        est = ScaledSigmaSampling(ls, n_per_scale=600, min_failures=8, n_bootstrap=200)
        rng = np.random.default_rng(11)
        est.run(rng)
        # Every fit — main and every bootstrap replicate — must only see
        # scales with at least min_failures failures.
        assert len(recorded) > 1
        for counts in recorded:
            assert np.all(counts >= est.min_failures)

    def test_bootstrap_skips_underdetermined_replicates(self):
        """Replicates where fewer than 3 scales clear the threshold are
        dropped instead of being fit."""
        ls = LinearLimitState(beta=4.0, dim=4)
        est = ScaledSigmaSampling(ls, n_per_scale=600, min_failures=8, n_bootstrap=100)
        rng = np.random.default_rng(13)
        # Per-scale probabilities hovering near the threshold: many
        # replicates must be discarded, none may sneak under it.
        p_use = np.array([8.0, 9.0, 10.0, 12.0]) / 600.0
        s_use = np.array([1.6, 2.0, 2.5, 3.2])
        boot = est._bootstrap_log_p(rng, s_use, p_use)
        assert boot.size < est.n_bootstrap
        assert np.all(np.isfinite(boot))
