"""Importance-sampling math tests: densities, weights, ESS, the shared core."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.errors import EstimationError
from repro.highsigma.analytic import LinearLimitState
from repro.highsigma.estimators import (
    DefensiveMixture,
    GaussianProposal,
    MeanShiftISCore,
    effective_sample_size,
    is_estimate,
    log_std_normal_pdf,
)


class TestLogStdNormal:
    def test_matches_scipy(self):
        rng = np.random.default_rng(0)
        u = rng.normal(size=(20, 3))
        expected = stats.multivariate_normal(np.zeros(3), np.eye(3)).logpdf(u)
        np.testing.assert_allclose(log_std_normal_pdf(u), expected, rtol=1e-10)

    def test_single_row(self):
        out = log_std_normal_pdf(np.zeros(4))
        assert out.shape == (1,)


class TestGaussianProposal:
    def test_logpdf_matches_scipy_full_cov(self):
        rng = np.random.default_rng(1)
        mean = np.array([1.0, -2.0])
        a = rng.normal(size=(2, 2))
        cov = a @ a.T + np.eye(2)
        gp = GaussianProposal(mean, cov)
        u = rng.normal(size=(10, 2))
        expected = stats.multivariate_normal(mean, cov).logpdf(u)
        np.testing.assert_allclose(gp.logpdf(u), expected, rtol=1e-9)

    def test_scalar_and_diag_cov(self):
        mean = np.zeros(3)
        iso = GaussianProposal(mean, 2.0)
        diag = GaussianProposal(mean, np.array([2.0, 2.0, 2.0]))
        u = np.ones((1, 3))
        np.testing.assert_allclose(iso.logpdf(u), diag.logpdf(u))

    def test_sample_moments(self):
        mean = np.array([3.0, -1.0])
        gp = GaussianProposal(mean, 0.5)
        x = gp.sample(40000, np.random.default_rng(2))
        np.testing.assert_allclose(x.mean(axis=0), mean, atol=0.02)
        np.testing.assert_allclose(x.var(axis=0), 0.5, atol=0.03)

    def test_non_psd_rejected(self):
        with pytest.raises(EstimationError):
            GaussianProposal(np.zeros(2), np.array([[1.0, 2.0], [2.0, 1.0]]))

    def test_dim_mismatch_rejected(self):
        with pytest.raises(EstimationError):
            GaussianProposal(np.zeros(2), np.ones(3))


class TestDefensiveMixture:
    def make(self, alpha=0.2):
        return DefensiveMixture([GaussianProposal(np.array([4.0, 0.0]), 1.0)], alpha=alpha)

    def test_weight_bound(self):
        # phi/q <= 1/alpha everywhere — the defensive guarantee.
        mix = self.make(alpha=0.2)
        rng = np.random.default_rng(3)
        u = rng.normal(size=(2000, 2)) * 3
        log_w = mix.log_weights(u)
        assert np.all(log_w <= np.log(1 / 0.2) + 1e-9)

    def test_logpdf_is_mixture(self):
        mix = self.make(alpha=0.3)
        u = np.array([[1.0, 1.0]])
        expected = np.log(
            0.3 * np.exp(log_std_normal_pdf(u))
            + 0.7 * np.exp(mix.components[0].logpdf(u))
        )
        np.testing.assert_allclose(mix.logpdf(u), expected, rtol=1e-9)

    def test_sampling_proportions(self):
        mix = self.make(alpha=0.5)
        x = mix.sample(20000, np.random.default_rng(4))
        # Half the samples should be near the origin, half near (4, 0).
        near_shift = (x[:, 0] > 2.0).mean()
        assert near_shift == pytest.approx(0.5, abs=0.05)

    def test_alpha_validation(self):
        with pytest.raises(EstimationError):
            self.make(alpha=1.0)

    def test_empty_components_rejected(self):
        with pytest.raises(EstimationError):
            DefensiveMixture([], alpha=0.1)

    def test_multi_component_weights(self):
        comps = [
            GaussianProposal(np.array([3.0, 0.0]), 1.0),
            GaussianProposal(np.array([0.0, 3.0]), 1.0),
        ]
        mix = DefensiveMixture(comps, alpha=0.1, weights=[3.0, 1.0])
        np.testing.assert_allclose(mix.weights, [0.675, 0.225])

    def test_sample_n_zero_returns_empty_block(self):
        # Regression: used to raise ValueError from np.concatenate([]).
        mix = self.make()
        out = mix.sample(0, np.random.default_rng(0))
        assert out.shape == (0, 2)

    def test_sample_qmc_n_zero_returns_empty_block(self):
        mix = self.make()
        out = mix.sample_qmc(0, np.random.default_rng(0))
        assert out.shape == (0, 2)


class TestIsEstimate:
    def test_exact_on_known_weights(self):
        log_w = np.log(np.array([0.5, 2.0, 1.0, 0.25]))
        fails = np.array([True, True, False, False])
        p, se = is_estimate(log_w, fails)
        assert p == pytest.approx((0.5 + 2.0) / 4)
        assert se > 0

    def test_no_failures_gives_zero(self):
        p, se = is_estimate(np.zeros(10), np.zeros(10, dtype=bool))
        assert p == 0.0
        assert se == 0.0

    def test_all_weight_one_recovers_mc(self):
        rng = np.random.default_rng(5)
        fails = rng.random(10000) < 0.3
        p, se = is_estimate(np.zeros(fails.size), fails)
        assert p == pytest.approx(0.3, abs=0.02)
        assert se == pytest.approx(np.sqrt(0.3 * 0.7 / 10000), rel=0.1)

    def test_shape_mismatch(self):
        with pytest.raises(EstimationError):
            is_estimate(np.zeros(3), np.zeros(4, dtype=bool))

    def test_empty_rejected(self):
        with pytest.raises(EstimationError):
            is_estimate(np.array([]), np.array([], dtype=bool))


class TestEss:
    def test_uniform_weights_full_ess(self):
        fails = np.ones(100, dtype=bool)
        assert effective_sample_size(np.zeros(100), fails) == pytest.approx(100.0)

    def test_single_dominant_weight(self):
        log_w = np.array([0.0, -50.0, -50.0])
        fails = np.ones(3, dtype=bool)
        assert effective_sample_size(log_w, fails) == pytest.approx(1.0, rel=1e-6)

    def test_zero_when_no_failures(self):
        assert effective_sample_size(np.zeros(5), np.zeros(5, dtype=bool)) == 0.0

    @given(st.lists(st.floats(min_value=-5, max_value=5), min_size=1, max_size=50))
    @settings(max_examples=40)
    def test_bounds(self, log_w_list):
        log_w = np.array(log_w_list)
        fails = np.ones(log_w.size, dtype=bool)
        ess = effective_sample_size(log_w, fails)
        assert 1.0 - 1e-9 <= ess <= log_w.size + 1e-9


class TestMeanShiftISCore:
    def test_unbiased_on_linear_case(self):
        # Mean-shift IS at the exact MPFP of a hyperplane: the estimate
        # must match the closed form tightly.
        ls = LinearLimitState(beta=4.0, dim=5)
        shift = 4.0 * ls.a
        core = MeanShiftISCore(ls, shifts=[shift], n_max=6000, target_rel_err=0.03)
        res = core.run(np.random.default_rng(6), method="test")
        assert res.p_fail == pytest.approx(ls.exact_pfail(), rel=0.1)
        assert res.converged

    def test_stops_at_target_rel_err(self):
        ls = LinearLimitState(beta=3.0, dim=4)
        core = MeanShiftISCore(ls, shifts=[3.0 * ls.a], n_max=50000, target_rel_err=0.1)
        res = core.run(np.random.default_rng(7), method="test")
        assert res.converged
        assert res.n_evals < 50000
        assert res.rel_err <= 0.1

    def test_budget_limited_flagged(self):
        ls = LinearLimitState(beta=4.0, dim=4)
        core = MeanShiftISCore(ls, shifts=[4.0 * ls.a], n_max=256, target_rel_err=0.001)
        res = core.run(np.random.default_rng(8), method="test")
        assert not res.converged
        assert res.n_evals == 256

    def test_extra_evals_folded_in(self):
        ls = LinearLimitState(beta=3.0, dim=4)
        core = MeanShiftISCore(ls, shifts=[3.0 * ls.a], n_max=512, target_rel_err=None)
        res = core.run(np.random.default_rng(9), method="test", extra_evals=123)
        assert res.n_evals == 512 + 123

    def test_diagnostics_passthrough(self):
        ls = LinearLimitState(beta=3.0, dim=4)
        core = MeanShiftISCore(ls, shifts=[3.0 * ls.a], n_max=256, target_rel_err=None)
        res = core.run(np.random.default_rng(10), method="test", diagnostics={"tag": 1})
        assert res.diagnostics["tag"] == 1
        assert res.diagnostics["n_components"] == 1

    def test_streaming_matches_collect_reference(self):
        """The streaming accumulator reproduces the old collect-everything
        path: same seed, same batches, identical p/std_err/ESS."""
        from repro.highsigma.estimators import effective_sample_size, is_estimate

        ls = LinearLimitState(beta=4.0, dim=5)
        core = MeanShiftISCore(
            ls, shifts=[4.0 * ls.a], n_max=4096, batch_size=256, target_rel_err=None
        )
        res = core.run(np.random.default_rng(21), method="test")

        # Reference replay: the quadratic pre-fix algorithm — store every
        # batch, re-concatenate, reduce over the full history.
        ls_ref = LinearLimitState(beta=4.0, dim=5)
        core_ref = MeanShiftISCore(
            ls_ref, shifts=[4.0 * ls_ref.a], n_max=4096, batch_size=256,
            target_rel_err=None,
        )
        rng = np.random.default_rng(21)
        log_w_hist, fails_hist = [], []
        n_drawn = 0
        while n_drawn < 4096:
            k = min(256, 4096 - n_drawn)
            u = core_ref.proposal.sample(k, rng)
            fails_hist.append(ls_ref.fails_batch(u))
            log_w_hist.append(core_ref.proposal.log_weights(u))
            n_drawn += k
        log_w_all = np.concatenate(log_w_hist)
        fails_all = np.concatenate(fails_hist)
        p_ref, se_ref = is_estimate(log_w_all, fails_all)
        ess_ref = effective_sample_size(log_w_all, fails_all)

        assert res.p_fail == pytest.approx(p_ref, rel=1e-10)
        assert res.std_err == pytest.approx(se_ref, rel=1e-8)
        assert res.ess == pytest.approx(ess_ref, rel=1e-10)
        assert res.n_failures == int(fails_all.sum())

    def test_per_batch_cost_constant(self):
        """O(1) bookkeeping per batch: late batches must not cost more
        than early ones (the pre-fix accumulator re-reduced the whole
        history each batch, so batch cost grew linearly with the index).

        Wall-clock medians over wide windows, with retries: a scheduler
        hiccup on a loaded CI runner is transient and passes on retry,
        while a real quadratic regression (>10x growth over 800 batches
        at this batch size) fails every attempt.
        """
        import time

        def measure():
            stamps = []
            ls = LinearLimitState(beta=3.0, dim=4)
            orig = ls._batch_fn

            def timed_batch(u_batch):
                stamps.append(time.perf_counter())
                return orig(u_batch)

            ls._batch_fn = timed_batch
            core = MeanShiftISCore(
                ls, shifts=[3.0 * ls.a], n_max=16 * 800, batch_size=16,
                target_rel_err=None,
            )
            core.run(np.random.default_rng(0), method="test")
            gaps = np.diff(np.array(stamps))
            assert gaps.size >= 700
            early = float(np.median(gaps[20:120]))
            late = float(np.median(gaps[-100:]))
            return early, late

        for _attempt in range(3):
            early, late = measure()
            if late <= 6.0 * early:
                return
        raise AssertionError(f"per-batch cost grew: {early:.2e}s -> {late:.2e}s")
