"""LimitState abstraction tests: conventions, counting, caching, gradients."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EstimationError
from repro.highsigma.limitstate import LimitState


def make_upper(spec=2.0, dim=3):
    """Metric = u[0]; failure when u[0] >= spec."""
    return LimitState(
        fn=lambda u: float(u[0]), spec=spec, dim=dim, direction="upper", name="t"
    )


class TestConventions:
    def test_upper_direction(self):
        ls = make_upper(spec=2.0)
        assert ls.g(np.array([1.0, 0, 0])) == pytest.approx(1.0)
        assert not ls.fails(np.array([1.0, 0, 0]))
        assert ls.fails(np.array([2.5, 0, 0]))

    def test_lower_direction(self):
        ls = LimitState(
            fn=lambda u: float(u[0]), spec=-1.0, dim=2, direction="lower"
        )
        assert ls.fails(np.array([-2.0, 0]))      # metric below spec
        assert not ls.fails(np.array([0.0, 0]))

    def test_boundary_counts_as_failure(self):
        ls = make_upper(spec=2.0)
        assert ls.fails(np.array([2.0, 0, 0]))

    def test_invalid_direction(self):
        with pytest.raises(EstimationError):
            LimitState(fn=lambda u: 0.0, spec=0, dim=1, direction="sideways")

    def test_invalid_dim(self):
        with pytest.raises(EstimationError):
            LimitState(fn=lambda u: 0.0, spec=0, dim=0)

    def test_shape_check(self):
        with pytest.raises(EstimationError):
            make_upper(dim=3).g(np.zeros(2))


class TestCounting:
    def test_each_eval_billed(self):
        ls = make_upper()
        ls.g(np.zeros(3))
        ls.g(np.ones(3))
        assert ls.n_evals == 2

    def test_cache_avoids_double_billing(self):
        ls = make_upper()
        u = np.array([1.0, 2.0, 3.0])
        ls.g(u)
        ls.g(u.copy())
        assert ls.n_evals == 1

    def test_cache_disabled(self):
        ls = LimitState(fn=lambda u: 0.0, spec=0, dim=1, cache=False)
        u = np.zeros(1)
        ls.g(u)
        ls.g(u)
        assert ls.n_evals == 2

    def test_batch_billing(self):
        ls = LimitState(
            fn=lambda u: float(u[0]),
            batch_fn=lambda ub: ub[:, 0],
            spec=1.0,
            dim=2,
        )
        ls.g_batch(np.zeros((7, 2)))
        assert ls.n_evals == 7

    def test_reset_counter(self):
        ls = make_upper()
        ls.g(np.zeros(3))
        ls.reset_counter()
        assert ls.n_evals == 0

    def test_cache_key_rounds_ulp_differences(self):
        # Regression: keys were raw u.tobytes(), so MPFP line-search
        # re-evaluations differing in the last ulp never hit the cache.
        ls = make_upper()
        u = np.array([1.0 / 3.0, 2.0, 3.0])
        ls.g(u)
        ls.g(u + 1e-15)
        assert ls.n_evals == 1

    def test_cache_key_negative_zero(self):
        ls = make_upper()
        ls.g(np.array([0.0, 0.0, 0.0]))
        ls.g(np.array([-1e-16, 0.0, 0.0]))  # rounds to -0.0 -> same key
        assert ls.n_evals == 1

    def test_cache_distinguishes_real_differences(self):
        ls = make_upper()
        ls.g(np.array([1.0, 0.0, 0.0]))
        ls.g(np.array([1.0 + 1e-9, 0.0, 0.0]))  # above the 12-decimal round
        assert ls.n_evals == 2

    def test_cache_size_bound(self):
        ls = LimitState(
            fn=lambda u: float(u[0]), spec=2.0, dim=1, cache_size=4
        )
        for i in range(10):
            ls.g(np.array([float(i)]))
        assert len(ls._cache) == 4
        # The oldest points were evicted: re-evaluating one re-bills.
        ls.g(np.array([0.0]))
        assert ls.n_evals == 11
        # The newest points are still cached.
        ls.g(np.array([9.0]))
        assert ls.n_evals == 11

    def test_cache_size_validation(self):
        with pytest.raises(EstimationError):
            LimitState(fn=lambda u: 0.0, spec=0, dim=1, cache_size=0)

    def test_unbounded_cache_opt_in(self):
        ls = LimitState(fn=lambda u: float(u[0]), spec=2.0, dim=1, cache_size=None)
        for i in range(10):
            ls.g(np.array([float(i)]))
        assert len(ls._cache) == 10


class TestBatchCachePopulation:
    def make_counted(self, cache=True, cache_size=None):
        calls = {"fn": 0, "batch": 0}

        def fn(u):
            calls["fn"] += 1
            return float(u[0])

        def batch_fn(ub):
            calls["batch"] += 1
            return ub[:, 0]

        ls = LimitState(
            fn=fn, batch_fn=batch_fn, spec=2.0, dim=2,
            cache=cache, **({} if cache_size is None else {"cache_size": cache_size}),
        )
        return ls, calls

    def test_batch_populates_scalar_cache(self):
        # The MPFP pattern: stencil points evaluated through g_batch, one
        # of them re-evaluated scalar by a later line search — must hit
        # the cache instead of paying for another simulation.
        ls, calls = self.make_counted()
        stencil = np.array([[0.5, 0.0], [1.5, 0.0], [0.5, 1.0]])
        ls.g_batch(stencil)
        assert ls.n_evals == 3
        assert ls.g(np.array([1.5, 0.0])) == pytest.approx(0.5)
        assert ls.n_evals == 3  # cache hit, not billed
        assert calls["fn"] == 0  # scalar path never ran the simulator

    def test_fails_batch_populates_too(self):
        ls, calls = self.make_counted()
        ls.fails_batch(np.array([[2.5, 0.0]]))
        assert ls.fails(np.array([2.5, 0.0]))
        assert ls.n_evals == 1

    def test_batch_population_respects_size_bound(self):
        ls, _ = self.make_counted(cache_size=4)
        ls.g_batch(np.stack([np.arange(10.0), np.zeros(10)], axis=1))
        assert len(ls._cache) == 4

    def test_bulk_sampling_batches_skip_population(self):
        # Population is for stencil-sized batches; a sampling-sized block
        # must neither pay the per-row bookkeeping nor churn the FIFO.
        ls, _ = self.make_counted()
        ls.g_batch(np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]]))
        assert len(ls._cache) == 3
        big = np.stack([np.arange(100.0), np.ones(100)], axis=1)
        ls.g_batch(big)
        assert len(ls._cache) == 3  # untouched by the bulk batch

    def test_batch_population_disabled_with_cache_off(self):
        ls, _ = self.make_counted(cache=False)
        ls.g_batch(np.zeros((3, 2)))
        assert ls._cache is None

    def test_fallback_billed_once_per_row_and_cached(self):
        # No batch_fn: the fallback routes through one metric() pass per
        # row (billed and cached there) without re-entering g per row.
        ls = make_upper()
        block = np.array([[1.0, 0, 0], [2.0, 0, 0]])
        out = ls.g_batch(block)
        np.testing.assert_allclose(out, [1.0, 0.0])
        assert ls.n_evals == 2
        ls.g(np.array([2.0, 0, 0]))
        assert ls.n_evals == 2  # cached by the fallback pass


class TestBatchConsistency:
    def test_batch_fn_matches_scalar(self):
        ls = LimitState(
            fn=lambda u: float(u @ u),
            batch_fn=lambda ub: np.sum(ub * ub, axis=1),
            spec=4.0,
            dim=3,
        )
        rng = np.random.default_rng(0)
        ub = rng.normal(size=(10, 3))
        batch = ls.g_batch(ub)
        scalar = np.array([ls.g(u) for u in ub])
        np.testing.assert_allclose(batch, scalar, rtol=1e-12)

    def test_fallback_loop_when_no_batch_fn(self):
        ls = make_upper()
        out = ls.g_batch(np.zeros((4, 3)))
        assert out.shape == (4,)

    def test_bad_batch_fn_shape_detected(self):
        ls = LimitState(
            fn=lambda u: 0.0,
            batch_fn=lambda ub: np.zeros((ub.shape[0], 2)),
            spec=0.0,
            dim=2,
        )
        with pytest.raises(EstimationError):
            ls.g_batch(np.zeros((3, 2)))

    def test_wrong_batch_width(self):
        with pytest.raises(EstimationError):
            make_upper(dim=3).g_batch(np.zeros((2, 4)))


class TestGradients:
    def quad_ls(self, dim=4):
        a = np.arange(1.0, dim + 1)
        return LimitState(
            fn=lambda u: float(a @ u + 0.5 * u @ u),
            batch_fn=lambda ub: ub @ a + 0.5 * np.sum(ub * ub, axis=1),
            spec=1.0,
            dim=dim,
            cache=False,
        ), a

    def test_central_gradient_accuracy(self):
        ls, a = self.quad_ls()
        u = np.array([0.5, -0.5, 1.0, 0.0])
        # g = spec - metric, so grad g = -(a + u).
        np.testing.assert_allclose(
            ls.fd_gradient(u, step=1e-4), -(a + u), rtol=1e-5, atol=1e-8
        )

    def test_forward_gradient_accuracy(self):
        ls, a = self.quad_ls()
        u = np.zeros(4)
        np.testing.assert_allclose(
            ls.fd_gradient(u, step=1e-6, scheme="forward"), -a, rtol=1e-4
        )

    def test_central_costs_2d_evals(self):
        ls, _ = self.quad_ls()
        ls.fd_gradient(np.zeros(4), step=0.1)
        assert ls.n_evals == 8

    def test_forward_costs_d_plus_one(self):
        ls, _ = self.quad_ls()
        ls.fd_gradient(np.zeros(4), step=0.1, scheme="forward")
        assert ls.n_evals == 5  # centre + d

    def test_unknown_scheme(self):
        ls, _ = self.quad_ls()
        with pytest.raises(EstimationError):
            ls.fd_gradient(np.zeros(4), scheme="magic")

    def test_spsa_cost_independent_of_dim(self):
        ls, _ = self.quad_ls()
        ls.spsa_gradient(np.zeros(4), np.random.default_rng(0), repeats=3)
        assert ls.n_evals == 6

    @given(st.integers(min_value=2, max_value=8))
    @settings(max_examples=10, deadline=None)
    def test_gradient_dimension_matches(self, dim):
        ls, _ = self.quad_ls(dim)
        g = ls.fd_gradient(np.zeros(dim), step=0.01)
        assert g.shape == (dim,)
