"""Quasi-Monte Carlo sampling option tests."""

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.highsigma.analytic import LinearLimitState
from repro.highsigma.estimators import DefensiveMixture, GaussianProposal, MeanShiftISCore


def mixture(dim=4, shift=4.0, alpha=0.1):
    mean = np.zeros(dim)
    mean[0] = shift
    return DefensiveMixture([GaussianProposal(mean, 1.0)], alpha=alpha)


class TestSampleQmc:
    def test_shape_and_finiteness(self):
        mix = mixture()
        u = mix.sample_qmc(333, np.random.default_rng(0))
        assert u.shape == (333, 4)
        assert np.all(np.isfinite(u))

    def test_component_allocation_proportional(self):
        mix = mixture(alpha=0.25)
        u = mix.sample_qmc(1000, np.random.default_rng(1))
        # Deterministic proportional allocation: ~250 defensive samples
        # near the origin, ~750 near the shift.
        near_shift = (u[:, 0] > 2.0).sum()
        assert near_shift == pytest.approx(750, abs=30)

    def test_qmc_moments_tighter_than_mc(self):
        # The shifted component's sample mean from Sobol points should be
        # closer to the true mean than random sampling at equal n.
        mix = mixture(alpha=0.0 + 1e-9)  # effectively single component
        rng = np.random.default_rng(2)
        n = 256
        err_qmc = abs(mix.sample_qmc(n, rng)[:, 0].mean() - 4.0)
        errs_mc = [abs(mix.sample(n, np.random.default_rng(s))[:, 0].mean() - 4.0)
                   for s in range(10)]
        assert err_qmc < np.median(errs_mc)


class TestCoreWithQmc:
    def test_unbiased_on_linear_case(self):
        ls = LinearLimitState(beta=4.0, dim=5)
        core = MeanShiftISCore(ls, shifts=[4.0 * ls.a], n_max=4096,
                               target_rel_err=None, sampler="qmc")
        res = core.run(np.random.default_rng(3), method="qmc-test")
        assert res.p_fail == pytest.approx(ls.exact_pfail(), rel=0.15)

    def test_qmc_lower_run_to_run_spread(self):
        def run(sampler, seed):
            ls = LinearLimitState(beta=4.0, dim=5)
            core = MeanShiftISCore(ls, shifts=[4.0 * ls.a], n_max=1024,
                                   target_rel_err=None, sampler=sampler)
            return core.run(np.random.default_rng(seed), method="x").p_fail

        qmc = np.array([run("qmc", s) for s in range(8)])
        mc = np.array([run("random", s) for s in range(8)])
        assert np.std(qmc) < np.std(mc)

    def test_unknown_sampler_rejected(self):
        ls = LinearLimitState(beta=4.0, dim=3)
        with pytest.raises(EstimationError):
            MeanShiftISCore(ls, shifts=[4.0 * ls.a], sampler="halton")
