"""Gradient importance sampling tests — the method under reproduction."""

import numpy as np
import pytest

from repro.errors import SearchError
from repro.highsigma.analytic import (
    LinearLimitState,
    QuadraticLimitState,
    SramSurrogateLimitState,
    UnionLimitState,
)
from repro.highsigma.gis import GradientImportanceSampling
from repro.highsigma.limitstate import LimitState
from repro.highsigma.mpfp import MpfpOptions


class TestAccuracy:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_linear_four_sigma(self, seed):
        ls = LinearLimitState(beta=4.0, dim=6)
        gis = GradientImportanceSampling(ls, n_max=5000, target_rel_err=0.05)
        res = gis.run(np.random.default_rng(seed))
        assert res.p_fail == pytest.approx(ls.exact_pfail(), rel=0.2)

    def test_linear_six_sigma(self):
        # The regime MC cannot touch: p ~ 1e-9 with a few thousand evals.
        ls = LinearLimitState(beta=6.0, dim=6)
        gis = GradientImportanceSampling(ls, n_max=6000, target_rel_err=0.05)
        res = gis.run(np.random.default_rng(3))
        assert res.p_fail == pytest.approx(ls.exact_pfail(), rel=0.25)
        assert res.n_evals < 10000

    def test_curved_boundary_beats_form(self):
        # FORM would report Phi(-beta); sampling must see the curvature.
        from scipy import stats

        ls = QuadraticLimitState(beta=5.0, dim=12, kappa=0.15)
        gis = GradientImportanceSampling(ls, n_max=8000, target_rel_err=0.05)
        res = gis.run(np.random.default_rng(4))
        exact = ls.exact_pfail()
        form = stats.norm.sf(5.0)
        assert res.p_fail == pytest.approx(exact, rel=0.3)
        assert abs(np.log10(res.p_fail) - np.log10(exact)) < abs(
            np.log10(form) - np.log10(exact)
        )

    def test_surrogate_workload(self):
        spec = SramSurrogateLimitState.spec_for_sigma(4.5)
        ls = SramSurrogateLimitState(spec=spec)
        gis = GradientImportanceSampling(ls, n_max=6000, target_rel_err=0.05)
        res = gis.run(np.random.default_rng(5))
        assert res.p_fail == pytest.approx(ls.exact_pfail(), rel=0.3)


class TestMultiStart:
    def test_union_needs_multistart(self):
        ls = UnionLimitState([4.0, 4.2], dim=8)
        multi = GradientImportanceSampling(
            ls, n_max=8000, n_starts=8, target_rel_err=0.05
        ).run(np.random.default_rng(6))
        assert len(multi.diagnostics["mpfp_beta"]) == 2
        assert multi.p_fail == pytest.approx(ls.exact_pfail(), rel=0.25)

    def test_single_start_underestimates_union(self):
        from scipy import stats

        ls = UnionLimitState([4.0, 4.0], dim=6)
        single = GradientImportanceSampling(
            ls, n_max=8000, n_starts=1, target_rel_err=0.05
        ).run(np.random.default_rng(7))
        # Captures about one of the two equal regions (defensive mixture
        # recovers a bit of the other).
        assert single.p_fail < 0.8 * ls.exact_pfail()

    def test_dedup_keeps_one_per_region(self):
        ls = LinearLimitState(beta=4.0, dim=6)
        gis = GradientImportanceSampling(ls, n_starts=5, n_max=2000)
        mpfps = gis.search_mpfps(np.random.default_rng(8))
        assert len(mpfps) == 1  # all starts converge to the same point

    def test_parallel_multistart_matches_serial(self):
        """The sharded search stage's determinism contract: the kept
        MPFPs depend only on n_starts, never on workers."""
        from repro.engine.sharding import fork_available

        def search(workers):
            ls = UnionLimitState([4.0, 4.2], dim=8)
            gis = GradientImportanceSampling(
                ls, n_starts=6, n_max=2000, workers=workers
            )
            return gis.search_mpfps(np.random.default_rng(21))

        serial = search(1)
        if not fork_available():
            pytest.skip("fork start method unavailable")
        pooled = search(4)
        assert len(serial) == len(pooled) == 2
        for a, b in zip(serial, pooled):
            np.testing.assert_array_equal(a.u_star, b.u_star)
            assert a.beta == b.beta

    def test_parallel_multistart_bills_search_evals(self):
        from repro.engine.sharding import fork_available

        if not fork_available():
            pytest.skip("fork start method unavailable")
        ls = UnionLimitState([4.0, 4.2], dim=8)
        gis = GradientImportanceSampling(
            ls, n_starts=4, n_max=1024, target_rel_err=None, workers=4
        )
        res = gis.run(np.random.default_rng(22))
        # Pooled searches reconcile their eval counts into the parent.
        assert res.diagnostics["search_evals"] > 0
        assert ls.n_evals == res.n_evals


class TestDiagnosticsAndAccounting:
    def test_search_cost_in_n_evals(self):
        ls = LinearLimitState(beta=4.0, dim=6)
        gis = GradientImportanceSampling(ls, n_max=1024, target_rel_err=None)
        res = gis.run(np.random.default_rng(9))
        assert res.n_evals == ls.n_evals
        assert res.n_evals > 1024  # sampling + search
        assert res.diagnostics["search_evals"] > 0

    def test_mpfp_reported(self):
        ls = LinearLimitState(beta=4.0, dim=6)
        res = GradientImportanceSampling(ls, n_max=2000).run(np.random.default_rng(10))
        assert res.diagnostics["mpfp_beta"][0] == pytest.approx(4.0, abs=0.05)
        assert res.diagnostics["mpfp_converged"][0]

    def test_ess_positive(self):
        ls = LinearLimitState(beta=4.0, dim=4)
        res = GradientImportanceSampling(ls, n_max=2000).run(np.random.default_rng(11))
        assert res.ess > 10


class TestOptions:
    def test_defensive_alpha_zero_still_works_at_mpfp(self):
        ls = LinearLimitState(beta=4.0, dim=5)
        gis = GradientImportanceSampling(ls, n_max=4000, alpha=0.0, target_rel_err=0.05)
        res = gis.run(np.random.default_rng(12))
        assert res.p_fail == pytest.approx(ls.exact_pfail(), rel=0.25)

    def test_cov_widen_changes_proposal_not_answer(self):
        ls1 = LinearLimitState(beta=4.0, dim=5)
        r1 = GradientImportanceSampling(ls1, n_max=6000, cov_widen=1.5,
                                        target_rel_err=0.05).run(np.random.default_rng(13))
        assert r1.p_fail == pytest.approx(ls1.exact_pfail(), rel=0.3)

    def test_shift_scale_pushes_into_failure(self):
        ls = LinearLimitState(beta=4.0, dim=5)
        gis = GradientImportanceSampling(ls, n_max=4000, shift_scale=1.05,
                                         target_rel_err=0.05)
        res = gis.run(np.random.default_rng(14))
        assert res.p_fail == pytest.approx(ls.exact_pfail(), rel=0.3)

    def test_spsa_search_mode(self):
        ls = LinearLimitState(beta=4.0, dim=6)
        gis = GradientImportanceSampling(
            ls,
            n_max=5000,
            target_rel_err=0.05,
            mpfp_options=MpfpOptions(grad_mode="spsa", spsa_repeats=16,
                                     max_iterations=80, tol_align=0.05),
        )
        res = gis.run(np.random.default_rng(15))
        # Noisier search, but the defensive IS stage still lands close.
        assert res.p_fail == pytest.approx(ls.exact_pfail(), rel=0.5)

    def test_unfindable_failure_raises(self):
        # A limit state that never fails anywhere reachable.
        ls = LimitState(fn=lambda u: 0.0, spec=1.0, dim=3, direction="upper",
                        name="never-fails")
        gis = GradientImportanceSampling(ls, n_starts=2)
        with pytest.raises(SearchError):
            gis.run(np.random.default_rng(16))
