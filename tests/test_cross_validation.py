"""Cross-validation: batched engine vs the reference MNA engine.

The batched engine is the statistical workhorse; the general MNA engine
is the reference.  They share the device model but differ in integrator
(fixed-grid BE vs adaptive trapezoidal) and capacitance handling, so the
agreement budget is a few percent — enforced here at nominal and across
a spread of variation vectors for both operations.
"""

import numpy as np
import pytest

from repro.sram.batched import Batched6T
from repro.sram.testbench import ReadTestbench, WriteTestbench

#: Relative disagreement budget between the two engines.
TOLERANCE = 0.06


@pytest.fixture(scope="module")
def engines():
    return {
        "batched": Batched6T(n_steps=900),
        "read": ReadTestbench(),
        "write": WriteTestbench(),
    }


class TestReadCrossValidation:
    def test_nominal(self, engines):
        ref = engines["read"].metric(None)
        fast = engines["batched"].read(np.zeros((1, 6))).metric[0]
        assert fast == pytest.approx(ref, rel=TOLERANCE)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_variation_vectors(self, engines, seed):
        rng = np.random.default_rng(seed)
        u = rng.normal(0, 1.5, size=6)
        sigma = engines["read"].space.sigma_vector()
        ref = engines["read"].metric(u)
        fast = engines["batched"].read((u * sigma)[None, :]).metric[0]
        assert fast == pytest.approx(ref, rel=TOLERANCE)

    def test_slow_corner(self, engines):
        u = np.array([0.0, 1.0, 3.0, 0.0, 0.0, 0.5])
        sigma = engines["read"].space.sigma_vector()
        ref = engines["read"].metric(u)
        fast = engines["batched"].read((u * sigma)[None, :]).metric[0]
        assert fast == pytest.approx(ref, rel=TOLERANCE)


class TestWriteCrossValidation:
    def test_nominal(self, engines):
        ref = engines["write"].metric(None)
        fast = engines["batched"].write(np.zeros((1, 6))).metric[0]
        assert fast == pytest.approx(ref, rel=TOLERANCE)

    @pytest.mark.parametrize("seed", [10, 11, 12])
    def test_random_variation_vectors(self, engines, seed):
        rng = np.random.default_rng(seed)
        u = rng.normal(0, 1.5, size=6)
        sigma = engines["write"].space.sigma_vector()
        ref = engines["write"].metric(u)
        fast = engines["batched"].write((u * sigma)[None, :]).metric[0]
        assert fast == pytest.approx(ref, rel=TOLERANCE)


class TestFailureClassificationAgreement:
    def test_engines_agree_on_failure_at_spread_of_points(self, engines):
        """The binary failure classification (the thing the probability
        estimate integrates) must agree between engines away from the
        immediate boundary neighbourhood."""
        rng = np.random.default_rng(99)
        spec = 1.6 * engines["read"].metric(None)
        sigma = engines["read"].space.sigma_vector()
        disagreements = 0
        for _ in range(8):
            u = rng.normal(0, 2.0, size=6)
            ref_fail = engines["read"].metric(u) >= spec
            fast_fail = engines["batched"].read((u * sigma)[None, :]).metric[0] >= spec
            if ref_fail != fast_fail:
                disagreements += 1
        assert disagreements <= 1
