"""System-level (cell + sense amp) read workload tests."""

import numpy as np
import pytest

from repro.experiments.workloads import make_read_limitstate, make_system_read_limitstate


@pytest.fixture(scope="module")
def system_ls():
    return make_system_read_limitstate(spec=55e-12, n_steps=250)


class TestStructure:
    def test_ten_dimensions(self, system_ls):
        assert system_ls.dim == 10

    def test_nominal_passes(self, system_ls):
        assert system_ls.g(np.zeros(10)) > 0

    def test_batch_matches_scalar(self, system_ls):
        rng = np.random.default_rng(0)
        ub = rng.normal(size=(4, 10))
        np.testing.assert_allclose(
            system_ls.g_batch(ub), [system_ls.g(u) for u in ub], rtol=1e-9
        )


class TestCoupling:
    def test_cell_axes_match_cell_only_workload(self, system_ls):
        # With zero SA variation and the same dv_base, the system metric
        # must agree with the cell-only limit state.
        cell_ls = make_read_limitstate(spec=55e-12, n_steps=250)
        rng = np.random.default_rng(1)
        for _ in range(3):
            u_cell = rng.normal(size=6)
            u_sys = np.concatenate([u_cell, np.zeros(4)])
            assert system_ls.g(u_sys) == pytest.approx(cell_ls.g(u_cell), rel=1e-6)

    def test_deaf_sense_amp_slows_read(self, system_ls):
        # +2 sigma on the latch's left NMOS raises the required
        # differential, so the margin shrinks.
        u_sa_bad = np.zeros(10)
        u_sa_bad[6] = 2.0
        assert system_ls.g(u_sa_bad) < system_ls.g(np.zeros(10))

    def test_favourable_offset_floored(self, system_ls):
        # A strongly favourable SA offset helps, but only down to the
        # dv floor — the margin gain saturates.
        # The floor engages once the favourable offset exceeds
        # dv_base - dv_floor = 100 mV (u = 4 at a 25 mV device sigma).
        u1, u2 = np.zeros(10), np.zeros(10)
        u1[8] = 5.0   # weaker right NMOS: negative offset, helps
        u2[8] = 8.0
        g1, g2 = system_ls.g(u1), system_ls.g(u2)
        assert g1 >= system_ls.g(np.zeros(10))
        assert g2 == pytest.approx(g1, rel=0.02)  # saturated at the floor

    def test_combined_failure_mechanism(self, system_ls):
        # A cell and SA each at +2.5 sigma: individually marginal,
        # jointly failing — the system-level coupling the workload exists
        # to expose.
        u = np.zeros(10)
        u[2] = 2.5   # slow pass gate
        u[6] = 2.5   # deaf latch
        cell_only = np.zeros(10)
        cell_only[2] = 2.5
        sa_only = np.zeros(10)
        sa_only[6] = 2.5
        assert system_ls.g(u) < min(system_ls.g(cell_only), system_ls.g(sa_only))


class TestDeepTailLatchBatch:
    """The headline bugfix: one unresolvable deep-tail sample must not
    abort a bulk latch-model batch — it saturates and counts as failure."""

    @pytest.fixture(scope="class")
    def latch_ls(self):
        return make_system_read_limitstate(
            spec=55e-12, n_steps=200, sa_model="latch", sa_dv_max=0.1
        )

    def test_mixed_batch_completes_and_counts_failure(self, latch_ls):
        rng = np.random.default_rng(5)
        ub = rng.normal(0.0, 0.5, size=(6, 10))
        ub[2, 6:] = [25.0, 0.0, -25.0, 0.0]   # offset far beyond sa_dv_max
        g = latch_ls.g_batch(ub)
        assert np.isneginf(g[2])              # unconditional failure
        assert np.isfinite(g[[0, 1, 3, 4, 5]]).all()

    def test_deep_tail_does_not_perturb_neighbours(self, latch_ls):
        rng = np.random.default_rng(6)
        ub = rng.normal(0.0, 0.5, size=(4, 10))
        g_clean = latch_ls.g_batch(ub)
        mixed = np.vstack([ub[:2], [[0.0] * 6 + [25.0, 0.0, -25.0, 0.0]], ub[2:]])
        g_mixed = latch_ls.g_batch(mixed)
        np.testing.assert_array_equal(g_mixed[[0, 1, 3, 4]], g_clean)

    def test_strict_mode_still_aborts(self):
        from repro.errors import MeasurementError

        strict = make_system_read_limitstate(
            spec=55e-12, n_steps=200, sa_model="latch", sa_dv_max=0.1,
            sa_on_unresolvable="raise",
        )
        ub = np.zeros((2, 10))
        ub[1, 6:] = [25.0, 0.0, -25.0, 0.0]
        with pytest.raises(MeasurementError, match="cannot resolve"):
            strict.g_batch(ub)


class TestEstimation:
    def test_gis_runs_on_ten_dims(self, system_ls):
        from repro.highsigma.gis import GradientImportanceSampling

        system_ls.reset_counter()
        res = GradientImportanceSampling(
            system_ls, n_max=1500, target_rel_err=0.15
        ).run(np.random.default_rng(2))
        assert res.p_fail > 0
        assert 2.0 < res.sigma_level < 8.0
        # The MPFP should involve *both* subsystems.
        u_star = np.array(res.diagnostics["mpfp_u"][0])
        assert np.max(np.abs(u_star[:6])) > 0.3
        assert np.max(np.abs(u_star[6:])) > 0.3
