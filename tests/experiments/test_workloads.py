"""Workload-definition tests (fast paths; calibration smoke-tested)."""

import numpy as np
import pytest

from repro.experiments.workloads import (
    analytic_grid_workloads,
    array_variation_space,
    calibrate_read_spec,
    cell_variation_space,
    column_variation_space,
    make_array_read_limitstate,
    make_column_read_limitstate,
    make_disturb_limitstate,
    make_read_limitstate,
    make_senseamp_offset_limitstate,
    make_system_read_limitstate,
    make_write_limitstate,
    surrogate_workload,
)
from repro.highsigma.sigma import pfail_to_sigma


class TestAnalyticGrid:
    def test_grid_size(self):
        wl = analytic_grid_workloads(sigmas=(4.0,), dims=(6, 12))
        assert len(wl) == 4  # linear + quadratic per dim

    def test_exact_pfail_populated(self):
        for w in analytic_grid_workloads(sigmas=(4.0,), dims=(6,)):
            assert 0 < w.exact_pfail < 1e-3

    def test_fresh_limit_state_per_make(self):
        w = analytic_grid_workloads(sigmas=(4.0,), dims=(6,))[0]
        ls1, ls2 = w.make(), w.make()
        ls1.g(np.zeros(6))
        assert ls2.n_evals == 0

    def test_linear_workloads_at_exact_sigma(self):
        w = [x for x in analytic_grid_workloads(sigmas=(5.0,), dims=(6,))
             if x.name.startswith("linear")][0]
        assert float(pfail_to_sigma(w.exact_pfail)) == pytest.approx(5.0, abs=1e-9)


class TestVariationSpace:
    def test_six_vth_axes(self):
        space = cell_variation_space()
        assert space.dim == 6
        assert all(a.kind == "vth" for a in space.axes)

    def test_beta_doubles(self):
        assert cell_variation_space(include_beta=True).dim == 12

    def test_pass_gate_has_largest_sigma(self):
        # Smallest area (after the pull-up) -> among the largest sigmas;
        # check pg sigma exceeds pd sigma (pd is wider).
        space = cell_variation_space()
        sig = dict(zip(space.labels, space.sigma_vector()))
        assert sig["m_pg_l.vth"] > sig["m_pd_l.vth"]


class TestSramLimitStates:
    def test_read_limitstate_nominal_passes(self):
        ls = make_read_limitstate(spec=60e-12, n_steps=250)
        assert ls.g(np.zeros(6)) > 0

    def test_read_limitstate_fails_at_weak_passgate(self):
        ls = make_read_limitstate(spec=45e-12, n_steps=250)
        u = np.zeros(6)
        u[2] = 4.0
        assert ls.fails(u)

    def test_batch_matches_scalar(self):
        ls = make_read_limitstate(spec=50e-12, n_steps=250)
        rng = np.random.default_rng(0)
        ub = rng.normal(size=(4, 6))
        batch = ls.g_batch(ub)
        scalar = np.array([ls.g(u) for u in ub])
        np.testing.assert_allclose(batch, scalar, rtol=1e-9)

    def test_write_limitstate_nominal_passes(self):
        ls = make_write_limitstate(spec=80e-12, n_steps=250)
        assert ls.g(np.zeros(6)) > 0

    def test_disturb_limitstate_nominal_passes(self):
        ls = make_disturb_limitstate(spec=0.5, n_steps=250)
        assert ls.g(np.zeros(6)) > 0

    def test_beta_axes_supported(self):
        ls = make_read_limitstate(spec=50e-12, n_steps=250, include_beta=True)
        assert ls.dim == 12
        assert np.isfinite(ls.g(np.zeros(12)))


class TestCompiledWorkloads:
    def test_senseamp_offset_nominal_passes(self):
        ls = make_senseamp_offset_limitstate(spec=0.08)
        assert ls.dim == 4
        assert ls.g(np.zeros(4)) > 0

    def test_senseamp_offset_scalar_routes_through_batch(self):
        # fn=None: scalar metric() runs the batched evaluator as a
        # one-row batch and bills exactly one evaluation.
        ls = make_senseamp_offset_limitstate(spec=0.08)
        before = ls.n_evals
        value = ls.metric(np.array([2.0, 0.0, -2.0, 0.0]))
        assert ls.n_evals == before + 1
        assert value > 0  # weak left NMOS + strong right one hurts the read

    def test_senseamp_offset_fails_at_mismatch_corner(self):
        ls = make_senseamp_offset_limitstate(spec=0.08)
        u = np.array([4.0, -2.0, -4.0, 2.0])  # all axes push the offset up
        assert ls.g(u) < 0

    def test_system_read_latch_model_tracks_linear(self):
        spec = 60e-12
        rng = np.random.default_rng(0)
        u = rng.normal(0.0, 1.0, size=(6, 10))
        lin = make_system_read_limitstate(spec, n_steps=250, sa_model="linear")
        lat = make_system_read_limitstate(spec, n_steps=250, sa_model="latch")
        g_lin = lin.g_batch(u)
        g_lat = lat.g_batch(u)
        # The latch offset quantisation and regeneration nonlinearity
        # shift the required differential by millivolts at most, which
        # moves the access margin only slightly.
        np.testing.assert_allclose(g_lat, g_lin, rtol=0.15, atol=2e-12)

    def test_system_read_bad_sa_model_rejected(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            make_system_read_limitstate(60e-12, sa_model="cubic")


class TestColumnWorkload:
    """The dimension-scaling column workload on the compiled sparse path."""

    @pytest.fixture(scope="class")
    def ls(self):
        return make_column_read_limitstate(6e-11, n_leakers=2, n_steps=200)

    def test_dim_scales_with_leakers(self, ls):
        assert ls.dim == 18
        assert make_column_read_limitstate(6e-11, n_leakers=5, n_steps=64).dim == 36

    def test_variation_space_order_matches_column(self):
        from repro.sram.column import ColumnConfig, ReadColumn

        space = column_variation_space(n_leakers=2)
        column = ReadColumn(config=ColumnConfig(n_leakers=2))
        assert [a.device for a in space.axes] == column.all_device_names()

    def test_nominal_passes(self, ls):
        assert ls.g(np.zeros(ls.dim)) > 0

    def test_batch_matches_scalar(self, ls):
        rng = np.random.default_rng(7)
        ub = rng.normal(size=(3, ls.dim))
        np.testing.assert_allclose(
            ls.g_batch(ub), [ls.g(u) for u in ub], rtol=1e-9
        )

    def test_accessed_cell_axis_dominates(self, ls):
        # +3 sigma on the accessed pass gate (axis 2) must cost far more
        # margin than +3 sigma on a leaker's pull-up (axis 6).
        u_access, u_leak = np.zeros(ls.dim), np.zeros(ls.dim)
        u_access[2] = 3.0
        u_leak[6] = 3.0
        g0 = ls.g(np.zeros(ls.dim))
        assert ls.g(u_access) < ls.g(u_leak)
        assert ls.g(u_access) < g0

    def test_bad_leaker_data_rejected(self):
        with pytest.raises(ValueError, match="leaker_data"):
            make_column_read_limitstate(6e-11, n_leakers=2, leaker_data="typo")


class TestArrayWorkload:
    """The array-level dimension-scaling workload on the compiled slice."""

    @pytest.fixture(scope="class")
    def ls(self):
        return make_array_read_limitstate(
            6e-11, n_cols=2, n_leakers=2, n_steps=200
        )

    def test_dim_scales_with_cols_and_leakers(self, ls):
        assert ls.dim == 6 * 2 * 3
        assert make_array_read_limitstate(
            6e-11, n_cols=3, n_leakers=1, n_steps=64
        ).dim == 36

    def test_variation_space_order_matches_array(self):
        from repro.sram.array import ArrayConfig, ArraySlice

        space = array_variation_space(n_cols=2, n_leakers=2)
        arr = ArraySlice(config=ArrayConfig(n_cols=2, n_leakers=2))
        assert [a.device for a in space.axes] == arr.all_device_names()

    def test_nominal_passes(self, ls):
        assert ls.g(np.zeros(ls.dim)) > 0

    def test_batch_matches_scalar(self, ls):
        rng = np.random.default_rng(8)
        ub = rng.normal(size=(3, ls.dim))
        np.testing.assert_allclose(
            ls.g_batch(ub), [ls.g(u) for u in ub], rtol=1e-9
        )

    def test_selected_column_axis_dominates(self, ls):
        # +3 sigma on the selected column's accessed pass gate (axis 2)
        # must cost real margin; the same shift on the unselected
        # column's accessed pass gate (axis 20) must not — its bitlines
        # never reach the data lines.
        u_sel, u_unsel = np.zeros(ls.dim), np.zeros(ls.dim)
        u_sel[2] = 3.0
        u_unsel[18 + 2] = 3.0
        g0 = ls.g(np.zeros(ls.dim))
        assert ls.g(u_sel) < g0
        assert abs(ls.g(u_unsel) - g0) < 0.5 * (g0 - ls.g(u_sel))

    def test_cross_check_paths_agree(self):
        dense = make_array_read_limitstate(
            6e-11, n_cols=2, n_leakers=2, n_steps=120, assembly="dense"
        )
        blocked = make_array_read_limitstate(
            6e-11, n_cols=2, n_leakers=2, n_steps=120, solver="blocked"
        )
        u = np.random.default_rng(9).normal(size=(2, dense.dim))
        np.testing.assert_allclose(
            dense.g_batch(u), blocked.g_batch(u), rtol=1e-6
        )


class TestCalibration:
    def test_read_spec_placement(self):
        # Calibrate at 3.5 sigma and verify with a fresh MPFP search.
        from repro.highsigma.mpfp import MpfpSearch

        spec = calibrate_read_spec(sigma_target=3.5, n_steps=250)
        ls = make_read_limitstate(spec, n_steps=250)
        res = MpfpSearch(ls).run()
        assert res.beta == pytest.approx(3.5, abs=0.35)


class TestSurrogate:
    def test_placed_at_requested_sigma(self):
        w = surrogate_workload(sigma_target=4.0)
        assert float(pfail_to_sigma(w.exact_pfail)) == pytest.approx(4.0, abs=0.05)

    def test_dimension_parameter(self):
        assert surrogate_workload(4.0, dim=12).dim == 12
