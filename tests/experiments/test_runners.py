"""Runner tests: row structure, error capture, cost model."""

import numpy as np
import pytest

from repro.experiments.runners import (
    MethodSpec,
    default_methods,
    mc_equivalent_cost,
    run_comparison,
    run_method,
)
from repro.experiments.workloads import Workload, analytic_grid_workloads
from repro.highsigma.gis import GradientImportanceSampling


@pytest.fixture
def linear_workload():
    return [w for w in analytic_grid_workloads(sigmas=(4.0,), dims=(6,))
            if w.name.startswith("linear")][0]


class TestRunMethod:
    def test_row_fields(self, linear_workload):
        spec = MethodSpec(
            "gis", lambda ls: GradientImportanceSampling(ls, n_max=2000,
                                                         target_rel_err=0.1)
        )
        row = run_method(linear_workload, spec, seed=0)
        for key in ("workload", "method", "p_fail", "sigma", "n_evals",
                    "err_vs_exact", "speedup_vs_mc", "wall_s"):
            assert key in row
        assert row["method"] == "gis"
        assert row["err_vs_exact"] < 0.5

    def test_error_captured_as_row(self):
        # A workload nothing can fail on: searches raise, row records it.
        from repro.highsigma.limitstate import LimitState

        wl = Workload(
            name="impossible",
            make=lambda: LimitState(fn=lambda u: 0.0, spec=1.0, dim=3,
                                    direction="upper", cache=False),
            exact_pfail=None,
            dim=3,
        )
        spec = MethodSpec(
            "gis", lambda ls: GradientImportanceSampling(ls, n_starts=1)
        )
        row = run_method(wl, spec, seed=0)
        assert row["p_fail"] is None
        assert "SearchError" in row["error"]

    def test_seed_determinism(self, linear_workload):
        spec = MethodSpec(
            "gis", lambda ls: GradientImportanceSampling(ls, n_max=1000,
                                                         target_rel_err=None)
        )
        r1 = run_method(linear_workload, spec, seed=5)
        r2 = run_method(linear_workload, spec, seed=5)
        assert r1["p_fail"] == r2["p_fail"]


class TestRunComparison:
    def test_all_method_seed_pairs(self, linear_workload):
        methods = default_methods(n_max=1500, mc_budget=20000)
        rows = run_comparison(linear_workload, methods, seeds=(0, 1))
        assert len(rows) == len(methods) * 2

    def test_default_methods_names(self):
        names = [m.name for m in default_methods()]
        assert names == ["mc", "gis", "mnis", "spherical", "sss"]
        names_no_mc = [m.name for m in default_methods(include_mc=False)]
        assert "mc" not in names_no_mc


class TestCostModel:
    def test_mc_equivalent_cost(self):
        assert mc_equivalent_cost(1e-6, 0.1) == pytest.approx(1e8, rel=0.01)

    def test_degenerate_inputs(self):
        assert np.isnan(mc_equivalent_cost(0.0, 0.1))
        assert np.isnan(mc_equivalent_cost(1e-6, float("inf")))
