"""Table/series rendering tests."""

from repro.experiments.tables import fmt, render_series, render_table


class TestFmt:
    def test_none_and_nan(self):
        assert fmt(None) == "--"
        assert fmt(float("nan")) == "--"

    def test_tiny_floats_scientific(self):
        assert "e" in fmt(3.2e-9)

    def test_moderate_floats_compact(self):
        assert fmt(3.25) == "3.25"

    def test_bool_and_str_and_int(self):
        assert fmt(True) == "yes"
        assert fmt(False) == "no"
        assert fmt("gis") == "gis"
        assert fmt(42) == "42"


class TestRenderTable:
    def test_alignment_and_headers(self):
        rows = [
            {"method": "gis", "p": 1e-9},
            {"method": "mc", "p": 2e-9},
        ]
        out = render_table(rows, ["method", "p"], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "method" in lines[1]
        assert "-+-" in lines[2]
        assert len(lines) == 5

    def test_missing_keys_render_dashes(self):
        out = render_table([{"a": 1}], ["a", "b"])
        assert "--" in out

    def test_custom_headers(self):
        out = render_table([{"a": 1}], ["a"], headers=["Alpha"])
        assert "Alpha" in out


class TestRenderSeries:
    def test_columns_per_curve(self):
        out = render_series(
            [1, 2], {"gis": [0.1, 0.2], "mc": [0.3, 0.4]}, x_label="n"
        )
        assert "gis" in out and "mc" in out
        assert "0.4" in out

    def test_short_series_padded(self):
        out = render_series([1, 2, 3], {"gis": [0.1]}, x_label="n")
        data_rows = out.splitlines()[2:]  # skip header and separator
        assert sum("--" in row for row in data_rows) == 2
