"""Metric-extraction tests on synthetic waveforms (no simulator)."""

import numpy as np
import pytest

from repro.spice.waveform import Waveform
from repro.sram.metrics import read_access_time, read_disturb_peak, write_trip_time

VDD = 1.0


def wl_pulse(t_stop=3e-9, t_rise=0.2e-9):
    t = np.linspace(0, t_stop, 301)
    v = np.clip((t - t_rise) / 20e-12, 0, 1) * VDD
    return Waveform(t, v, "wl")


def bitline(drop_start, slope, t_stop=3e-9):
    """BL discharging linearly from VDD after drop_start."""
    t = np.linspace(0, t_stop, 301)
    v = VDD - np.maximum(t - drop_start, 0.0) * slope
    return Waveform(t, np.clip(v, 0, VDD), "bl")


def flat(level, t_stop=3e-9):
    t = np.linspace(0, t_stop, 301)
    return Waveform(t, np.full_like(t, level))


class TestReadAccessTime:
    def test_measured_when_differential_develops(self):
        wl = wl_pulse()
        bl = bitline(0.3e-9, slope=0.2e9)  # 0.2 V/ns discharge
        blb = flat(VDD)
        s = read_access_time(bl, blb, wl, dv_spec=0.1, vdd=VDD)
        assert s.event_found
        # 0.1 V differential at 0.3ns + 0.1/0.2e9 = 0.8 ns; WL mid at 0.21 ns.
        assert s.value == pytest.approx(0.8e-9 - 0.21e-9, rel=0.05)

    def test_penalty_when_no_development(self):
        wl = wl_pulse()
        s = read_access_time(bitline(0.3e-9, slope=0.0), flat(VDD), wl, dv_spec=0.1, vdd=VDD)
        assert not s.event_found
        assert s.value > 2.5e-9  # beyond the window

    def test_penalty_is_continuous_at_window_edge(self):
        # A crossing exactly at the window end and a hair-short shortfall
        # must produce almost identical values.
        wl = wl_pulse()
        t_stop = 3e-9
        # Slope chosen so dv reaches exactly 0.1 V at t_stop.
        slope_hit = 0.1 / (t_stop - 0.3e-9)
        s_hit = read_access_time(
            bitline(0.3e-9, slope_hit * 1.0001), flat(VDD), wl, dv_spec=0.1, vdd=VDD
        )
        s_miss = read_access_time(
            bitline(0.3e-9, slope_hit * 0.9999), flat(VDD), wl, dv_spec=0.1, vdd=VDD
        )
        assert s_hit.event_found and not s_miss.event_found
        assert s_miss.value == pytest.approx(s_hit.value, rel=0.01)

    def test_monotone_in_slope(self):
        wl = wl_pulse()
        values = []
        for slope in (0.3e9, 0.2e9, 0.1e9, 0.05e9, 0.02e9):
            s = read_access_time(bitline(0.3e-9, slope), flat(VDD), wl, dv_spec=0.1, vdd=VDD)
            values.append(s.value)
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_aux_fields(self):
        wl = wl_pulse()
        s = read_access_time(bitline(0.3e-9, 0.2e9), flat(VDD), wl, dv_spec=0.1, vdd=VDD)
        assert "dv_final" in s.aux and "t_wl" in s.aux


class TestWriteTripTime:
    def rising_qb(self, trip_t, t_stop=3e-9):
        t = np.linspace(0, t_stop, 301)
        v = VDD / (1 + np.exp(-(t - trip_t) / 50e-12))
        return Waveform(t, v, "qb")

    def test_trip_measured(self):
        wl = wl_pulse()
        qb = self.rising_qb(1.0e-9)
        q = flat(0.0)
        s = write_trip_time(q, qb, wl, vdd=VDD)
        assert s.event_found
        assert s.value == pytest.approx(1.0e-9 - 0.21e-9, rel=0.05)

    def test_penalty_when_never_trips(self):
        wl = wl_pulse()
        qb = flat(0.2)
        s = write_trip_time(flat(VDD), qb, wl, vdd=VDD)
        assert not s.event_found
        assert s.value > 2.5e-9
        assert s.aux["qb_peak"] == pytest.approx(0.2)

    def test_penalty_scales_with_shortfall(self):
        wl = wl_pulse()
        s_close = write_trip_time(flat(VDD), flat(0.45), wl, vdd=VDD)
        s_far = write_trip_time(flat(VDD), flat(0.10), wl, vdd=VDD)
        assert s_far.value > s_close.value


class TestReadDisturb:
    def bumped_q(self, peak, t_stop=3e-9):
        t = np.linspace(0, t_stop, 301)
        v = peak * np.exp(-(((t - 1.5e-9) / 0.5e-9) ** 2))
        return Waveform(t, v, "q")

    def test_peak_measured(self):
        s = read_disturb_peak(self.bumped_q(0.3), wl_pulse(), vdd=VDD)
        assert s.value == pytest.approx(0.3, rel=0.02)
        assert s.aux["flipped"] == 0.0

    def test_flip_detected(self):
        t = np.linspace(0, 3e-9, 301)
        v = np.clip((t - 1e-9) / 0.2e-9, 0, 1) * VDD  # latches high
        s = read_disturb_peak(Waveform(t, v), wl_pulse(), vdd=VDD)
        assert s.value == pytest.approx(VDD, rel=0.02)
        assert s.aux["flipped"] == 1.0

    def test_monotone_in_peak(self):
        peaks = [0.1, 0.2, 0.35, 0.48]
        vals = [
            read_disturb_peak(self.bumped_q(p), wl_pulse(), vdd=VDD).value for p in peaks
        ]
        assert all(b > a for a, b in zip(vals, vals[1:]))
