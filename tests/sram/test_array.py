"""Array-slice tests: structure, mux physics, compiled-path invariants.

The compiled rungs mirror ``tests/sram/test_compiled_benches.py``:
fast-vs-reference at the PR 2 tolerance ladder, sparse-vs-dense assembly
at *bit-equality*, the per-column Schur peel against the generic blocked
elimination at solver-arithmetic tolerance, and compiled-vs-scalar at
the cross-validation budget.
"""

import numpy as np
import pytest

from repro.sram.array import CDL_PER_COLUMN, CDL_WIRE, ArrayConfig, ArraySlice
from repro.sram.column import CBL_PER_CELL, CBL_WIRE
from repro.sram.testbench import OperationTiming

#: Short wordline pulse keeps the scalar-MNA cross-validation affordable.
FAST = OperationTiming(wl_width=1.0e-9, t_hold=0.2e-9)

#: Compiled-vs-adaptive-integrator agreement budget (cross-validation class).
XVAL_REL = 0.25


@pytest.fixture(scope="module")
def small_array():
    """2 columns x (1 accessed + 2 leakers): 16 unknowns, 4-node border."""
    return ArraySlice(config=ArrayConfig(n_cols=2, n_leakers=2))


class TestConfig:
    def test_cap_estimates(self):
        cfg = ArrayConfig(n_cols=3, n_leakers=5)
        assert cfg.bitline_cap() == pytest.approx(CBL_WIRE + 6 * CBL_PER_CELL)
        assert cfg.dataline_cap() == pytest.approx(CDL_WIRE + 3 * CDL_PER_COLUMN)

    def test_explicit_caps_win(self):
        cfg = ArrayConfig(cbl=5e-15, cdl=3e-15)
        assert cfg.bitline_cap() == 5e-15
        assert cfg.dataline_cap() == 3e-15

    def test_bad_data_pattern_rejected(self):
        with pytest.raises(ValueError, match="leaker_data"):
            ArraySlice(config=ArrayConfig(leaker_data="random"))

    def test_bad_column_count_rejected(self):
        with pytest.raises(ValueError, match="n_cols"):
            ArraySlice(config=ArrayConfig(n_cols=0))

    def test_bad_selected_column_rejected(self):
        with pytest.raises(ValueError, match="sel_col"):
            ArraySlice(config=ArrayConfig(n_cols=2, sel_col=2))


class TestStructure:
    def test_device_count(self, small_array):
        # 6 per cell, 3 cells per column, 2 columns, plus 2 mux PMOS per
        # column.
        assert len(small_array.circuit.mosfets()) == 6 * 3 * 2 + 2 * 2

    def test_all_device_names_order(self, small_array):
        names = small_array.all_device_names()
        assert len(names) == small_array.n_variation_devices == 36
        assert names[0] == "m_pu_l_c0a"
        assert names[6] == "m_pu_l_c0l0"
        assert names[18] == "m_pu_l_c1a"
        assert not any(n.startswith("m_mux") for n in names)

    def test_accessed_device_names_follow_selection(self):
        arr = ArraySlice(config=ArrayConfig(n_cols=2, n_leakers=1, sel_col=1))
        assert all(n.endswith("_c1a") for n in arr.accessed_device_names())

    def test_compiles_to_per_column_schur(self, small_array):
        ct = small_array.compiled(n_steps=64)
        assert ct.solver == "schur"
        assert ct.assembly == "sparse"
        # Border: both bitlines of both columns; interior: one cell pair
        # per cell plus the two data-line singletons.
        assert ct._schur.h.size == 2 * 2
        assert [(s, nodes.shape[0]) for s, nodes in ct._schur.groups] == \
            [(1, 2), (2, 6)]
        border_names = {ct.node_names[i] for i in ct._schur.h}
        assert border_names == {"bl_c0", "blb_c0", "bl_c1", "blb_c1"}

    def test_unknown_count(self, small_array):
        ct = small_array.compiled(n_steps=64)
        # 2 cols * (2 * 3 cell nodes + 2 bitlines) + dl + dlb.
        assert ct.n_unknowns == 2 * (6 + 2) + 2


class TestCompiledInvariants:
    @pytest.fixture(scope="class")
    def arr(self):
        return ArraySlice(config=ArrayConfig(n_cols=2, n_leakers=2))

    def test_fast_vs_reference_ladder(self, arr):
        rng = np.random.default_rng(30)
        dvth = rng.normal(0.0, 0.03, size=(10, 36))
        f = arr.access_times_batch(dvth, n_steps=160, kernel="fast")
        r = arr.access_times_batch(dvth, n_steps=160, kernel="reference")
        np.testing.assert_allclose(f, r, rtol=1e-9)

    def test_fast_vs_reference_corner_ladder(self, arr):
        rng = np.random.default_rng(31)
        dvth = rng.normal(0.0, 0.03, size=(6, 36)) * 4.0
        dvth[0, :6] = [0.55, -0.55, 0.55, -0.55, 0.55, -0.55]
        f = arr.differential_at_wl_fall_batch(dvth, n_steps=160, kernel="fast")
        r = arr.differential_at_wl_fall_batch(dvth, n_steps=160,
                                              kernel="reference")
        np.testing.assert_allclose(f, r, rtol=1e-6)

    def test_sparse_bit_equal_to_dense(self, arr):
        """The stamp-determinism invariant on a >= 2-column slice."""
        rng = np.random.default_rng(32)
        dvth = rng.normal(0.0, 0.03, size=(24, 36))
        d = arr.access_times_batch(dvth, n_steps=160, assembly="dense")
        s = arr.access_times_batch(dvth, n_steps=160, assembly="sparse")
        np.testing.assert_array_equal(d, s)

    def test_schur_matches_blocked_elimination(self, arr):
        """Different solver arithmetic, same converged answer."""
        rng = np.random.default_rng(33)
        dvth = rng.normal(0.0, 0.03, size=(12, 36))
        a = arr.access_times_batch(dvth, n_steps=160, solver="schur")
        b = arr.access_times_batch(dvth, n_steps=160, solver="blocked")
        np.testing.assert_allclose(a, b, rtol=1e-6)

    def test_blocked_solver_resolved(self, arr):
        ct = arr.compiled(n_steps=64, solver="blocked")
        assert ct.solver == "blocked"
        assert ct._schur is None

    def test_bad_matrix_shape_rejected(self, arr):
        with pytest.raises(ValueError, match="delta_vth matrix shape"):
            arr.access_times_batch(np.zeros((4, 24)), n_steps=64)


class TestReadPhysics:
    @pytest.fixture(scope="class")
    def arr(self):
        return ArraySlice(config=ArrayConfig(n_cols=2, n_leakers=2),
                          timing=FAST)

    def test_nominal_read_succeeds(self, arr):
        t = arr.access_times_batch(np.zeros((1, 36)), n_steps=160)[0]
        assert 1e-12 < t < 2e-9

    def test_compiled_vs_scalar_access_time(self, arr):
        """Compiled slice against the adaptive-grid MNA engine."""
        batch = arr.access_times_batch(np.zeros((1, 36)), n_steps=400)[0]
        scalar = arr.access_sample()
        assert scalar.event_found
        assert batch == pytest.approx(scalar.value, rel=XVAL_REL)

    def test_selected_column_dominates(self, arr):
        """A weak pass gate on the *selected* column's accessed cell
        must slow the muxed read; the same weakness on the unselected
        column must not (its bitlines never reach the data lines)."""
        names = arr.all_device_names()
        nominal = arr.access_times_batch(np.zeros((1, 36)), n_steps=160)[0]
        sel = np.zeros((1, 36))
        sel[0, names.index("m_pg_l_c0a")] = 0.12
        unsel = np.zeros((1, 36))
        unsel[0, names.index("m_pg_l_c1a")] = 0.12
        t_sel = arr.access_times_batch(sel, n_steps=160)[0]
        t_unsel = arr.access_times_batch(unsel, n_steps=160)[0]
        assert t_sel > 1.1 * nominal
        assert abs(t_unsel - nominal) < 0.1 * (t_sel - nominal)

    def test_leakage_erodes_muxed_differential(self):
        """More adversarial leakers on the selected column must erode
        the data-line differential, exactly as on the bare column."""
        short = ArraySlice(config=ArrayConfig(n_cols=2, n_leakers=2),
                           timing=FAST)
        long_ = ArraySlice(config=ArrayConfig(n_cols=2, n_leakers=6),
                           timing=FAST)
        d_short = short.differential_at_wl_fall_batch(
            np.zeros((1, 36)), n_steps=160)[0]
        d_long = long_.differential_at_wl_fall_batch(
            np.zeros((1, 84)), n_steps=160)[0]
        assert d_long < d_short

    def test_simulation_counter_billed(self, arr):
        before = arr.n_simulations
        arr.access_times_batch(np.zeros((3, 36)), n_steps=64)
        assert arr.n_simulations == before + 3


class TestResolveBatch:
    @pytest.fixture(scope="class")
    def arr(self):
        return ArraySlice(config=ArrayConfig(n_cols=2, n_leakers=2),
                          timing=FAST)

    def test_nominal_resolves_correctly(self, arr):
        correct, t_res = arr.resolve_batch(np.zeros((2, 36)), n_steps=160)
        assert correct.all()
        assert np.isfinite(t_res).all()
        assert (t_res > 0).all()

    def test_deaf_latch_fails_the_read(self, arr):
        """A large adverse latch offset must flip the shared sense amp's
        decision even though the column-side differential is healthy."""
        sa_bad = np.zeros((1, 4))
        sa_bad[0] = [0.5, 0.0, -0.5, 0.0]  # strongly favours the wrong side
        correct, _ = arr.resolve_batch(
            np.zeros((1, 36)), sa_delta_vth=sa_bad, n_steps=160
        )
        assert not correct[0]

    def test_latch_mismatch_shared_across_samples(self, arr):
        rng = np.random.default_rng(34)
        dvth = rng.normal(0.0, 0.02, size=(3, 36))
        sa = rng.normal(0.0, 0.02, size=(3, 4))
        c, t = arr.resolve_batch(dvth, sa_delta_vth=sa, n_steps=160)
        assert c.shape == (3,) and t.shape == (3,)
