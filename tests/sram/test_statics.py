"""Butterfly-curve SNM tests."""

import pytest

from repro.errors import MeasurementError
from repro.sram.statics import butterfly_snm, half_cell_vtc


class TestVtc:
    def test_vtc_is_monotone_decreasing(self):
        vin, vout = half_cell_vtc(n_points=31)
        assert all(b <= a + 1e-6 for a, b in zip(vout, vout[1:]))

    def test_vtc_rails(self):
        vin, vout = half_cell_vtc(n_points=31)
        assert vout[0] == pytest.approx(1.0, abs=0.02)
        assert vout[-1] == pytest.approx(0.0, abs=0.02)

    def test_read_condition_lifts_low_output(self):
        # With WL high and BL at VDD the access transistor fights the
        # pull-down, lifting the logic-low output.
        _, hold = half_cell_vtc(wl_voltage=0.0, n_points=21)
        _, read = half_cell_vtc(wl_voltage=1.0, n_points=21)
        assert read[-1] > hold[-1] + 0.02

    def test_vth_shift_moves_switching_point(self):
        vin0, vout0 = half_cell_vtc(n_points=41)
        vin1, vout1 = half_cell_vtc(n_points=41, delta_vth={"pd": 0.1})
        # Weaker pull-down -> switching threshold moves right.
        mid0 = vin0[int((vout0 > 0.5).sum())]
        mid1 = vin1[int((vout1 > 0.5).sum())]
        assert mid1 > mid0


class TestSnm:
    def test_hold_snm_in_physical_range(self):
        snm = butterfly_snm(n_points=41)
        assert 0.2 < snm < 0.5  # 45nm-class cell at 1 V

    def test_read_snm_below_hold_snm(self):
        hold = butterfly_snm(mode="hold", n_points=41)
        read = butterfly_snm(mode="read", n_points=41)
        assert read < hold

    def test_snm_shrinks_with_vdd(self):
        s10 = butterfly_snm(vdd=1.0, n_points=31)
        s07 = butterfly_snm(vdd=0.7, n_points=31)
        assert s07 < s10

    def test_asymmetry_degrades_snm(self):
        nominal = butterfly_snm(n_points=41)
        skewed = butterfly_snm(n_points=41, delta_vth_left={"pd": 0.08, "pu": -0.05})
        assert skewed < nominal

    def test_bad_mode_rejected(self):
        with pytest.raises(MeasurementError):
            butterfly_snm(mode="write")

    def test_severe_skew_collapses_a_lobe(self):
        # A huge threshold skew destroys bistability: SNM ~ 0.
        snm = butterfly_snm(
            n_points=41,
            delta_vth_left={"pd": -0.4, "pu": 0.4},
            delta_vth_right={"pd": 0.4, "pu": -0.4},
        )
        assert snm < 0.1
