"""Compiled batched entry points vs their scalar references.

Two rungs per bench, mirroring the structure of ``tests/sram/test_kernel.py``:

* **fast vs reference compiled kernel** — same grid, same scheme, only the
  device-evaluation/solver implementation differs: pinned at the PR 2
  tolerance ladder (~1e-9 relative nominal, 1e-6 at sigma-scaled corners);
* **compiled vs scalar adaptive engine** — different integrators (fixed
  backward Euler vs adaptive), so the budget is the cross-validation
  class: decisions must agree exactly, continuous values to a few
  percent (the same budget ``tests/test_cross_validation.py`` enforces
  between ``Batched6T`` and the scalar testbenches).
"""

import numpy as np
import pytest

from repro.sram.column import ColumnConfig, ReadColumn
from repro.sram.senseamp import SA_DEVICE_ORDER, SenseAmp
from repro.sram.testbench import WriteTestbench

#: Compiled-vs-adaptive-integrator agreement budget (cross-validation class).
XVAL_REL = 0.25


def sa_dict(row):
    return {name: float(row[j]) for j, name in enumerate(SA_DEVICE_ORDER)}


class TestSenseAmpResolveBatch:
    @pytest.fixture(scope="class")
    def sense(self):
        return SenseAmp()

    def test_fast_vs_reference_nominal_ladder(self, sense):
        rng = np.random.default_rng(0)
        dvt = rng.normal(0.0, 0.02, size=(48, 4))
        dv = rng.uniform(-0.15, 0.15, size=48)
        c_f, t_f = sense.resolve_batch(dv, dvt, kernel="fast")
        c_r, t_r = sense.resolve_batch(dv, dvt, kernel="reference")
        np.testing.assert_array_equal(c_f, c_r)
        ok = np.isfinite(t_r)
        np.testing.assert_array_equal(np.isfinite(t_f), ok)
        np.testing.assert_allclose(t_f[ok], t_r[ok], rtol=1e-9)

    def test_fast_vs_reference_corner_ladder(self, sense):
        """Sigma-scaled corners: |dVth| pushed far past the Pelgrom sigma."""
        rng = np.random.default_rng(1)
        dvt = rng.normal(0.0, 0.02, size=(24, 4)) * 4.0
        dvt[0] = [0.12, -0.12, -0.12, 0.12]
        dvt[1] = [-0.15, 0.15, 0.15, -0.15]
        dv = rng.uniform(-0.2, 0.2, size=24)
        c_f, t_f = sense.resolve_batch(dv, dvt, kernel="fast")
        c_r, t_r = sense.resolve_batch(dv, dvt, kernel="reference")
        np.testing.assert_array_equal(c_f, c_r)
        ok = np.isfinite(t_r)
        np.testing.assert_allclose(t_f[ok], t_r[ok], rtol=1e-6)

    def test_compiled_vs_scalar_decisions_and_times(self, sense):
        rng = np.random.default_rng(2)
        dvt = rng.normal(0.0, 0.02, size=(6, 4))
        dv = np.array([0.08, -0.08, 0.15, 0.03, -0.02, 0.12])
        c_b, t_b = sense.resolve_batch(dv, dvt)
        for i in range(dv.size):
            c_s, t_s = sense.resolve(float(dv[i]), sa_dict(dvt[i]))
            assert bool(c_b[i]) == c_s
            if np.isfinite(t_s):
                assert t_b[i] == pytest.approx(t_s, rel=XVAL_REL)

    def test_dv_sign_conventions_match_scalar_ic(self, sense):
        """Negative pre-sets start the other side low, as in the scalar path."""
        c_pos, _ = sense.resolve_batch(np.array([0.1]))
        c_neg, _ = sense.resolve_batch(np.array([-0.1]))
        assert bool(c_pos[0]) and not bool(c_neg[0])


class TestSenseAmpOffsetBatch:
    @pytest.fixture(scope="class")
    def sense(self):
        return SenseAmp()

    def test_offset_batch_matches_scalar_bisection(self, sense):
        rng = np.random.default_rng(3)
        dvt = rng.normal(0.0, 0.02, size=(5, 4))
        batch = sense.offset_batch(dvt)
        for i in range(5):
            scalar = sense.offset(sa_dict(dvt[i]))
            # Identical bisection ladder; decisions can only differ inside
            # the integrator-disagreement band around the flip point, so
            # the results match to a few bisection quanta.
            assert batch[i] == pytest.approx(scalar, abs=5e-3)

    def test_offset_tracks_linear_model(self, sense):
        """The first-order model was validated against the scalar
        bisection; the batched bisection must stay on the same line."""
        rng = np.random.default_rng(4)
        u = rng.normal(0.0, 1.5, size=(16, 4))
        sig = sense.design.vth_sigmas()
        batch = sense.offset_batch(u * sig)
        linear = sense.offset_linear(u)
        np.testing.assert_allclose(batch, linear, atol=8e-3)

    def test_out_of_range_sample_raises(self, sense):
        from repro.errors import MeasurementError

        dvt = np.zeros((2, 4))
        dvt[1] = [0.5, 0.0, -0.5, 0.0]  # absurd mismatch: offset >> dv_max
        with pytest.raises(MeasurementError, match="cannot resolve"):
            sense.offset_batch(dvt, dv_max=0.1)

    def test_out_of_range_sample_saturates(self, sense):
        """A deep-tail sample saturates to +inf instead of killing the
        batch, and the resolvable samples are untouched by its presence."""
        rng = np.random.default_rng(20)
        good = rng.normal(0.0, 0.02, size=(4, 4))
        mixed = np.vstack([good[:2], [[0.5, 0.0, -0.5, 0.0]], good[2:]])
        out = sense.offset_batch(mixed, dv_max=0.1, on_unresolvable="saturate")
        assert np.isposinf(out[2])
        clean = sense.offset_batch(good, dv_max=0.1, on_unresolvable="saturate")
        np.testing.assert_array_equal(out[[0, 1, 3, 4]], clean)

    def test_scalar_offset_still_raises(self, sense):
        from repro.errors import MeasurementError

        with pytest.raises(MeasurementError, match="cannot resolve"):
            sense.offset(sa_dict(np.array([0.5, 0.0, -0.5, 0.0])), dv_max=0.1)

    def test_bad_on_unresolvable_rejected(self, sense):
        from repro.errors import MeasurementError

        with pytest.raises(MeasurementError, match="on_unresolvable"):
            sense.offset_batch(np.zeros((2, 4)), on_unresolvable="ignore")

    def test_mixed_dict_sizes_rejected(self, sense):
        """Per-device arrays that disagree on n must error loudly, not
        silently broadcast to the largest size."""
        from repro.errors import MeasurementError

        with pytest.raises(MeasurementError, match="disagree"):
            sense.offset_batch(
                {"m_sn_l": np.zeros(3), "m_sn_r": np.zeros(5)}
            )

    def test_scalar_in_dict_still_broadcasts(self, sense):
        out = sense.offset_batch(
            {"m_sn_l": 0.02, "m_sn_r": np.full(3, -0.02)}
        )
        assert out.shape == (3,)
        np.testing.assert_allclose(out, out[0])


class TestReadColumnBatch:
    @pytest.fixture(scope="class")
    def column(self):
        # A short column keeps the blocked-elimination node count (10)
        # while the adversarial leakage physics stays intact.
        return ReadColumn(config=ColumnConfig(n_leakers=3))

    def test_fast_vs_reference_ladder(self, column):
        rng = np.random.default_rng(5)
        dvth = rng.normal(0.0, 0.03, size=(12, 6))
        d_f = column.differential_at_wl_fall_batch(dvth, n_steps=200, kernel="fast")
        d_r = column.differential_at_wl_fall_batch(dvth, n_steps=200, kernel="reference")
        np.testing.assert_allclose(d_f, d_r, rtol=1e-9)

    def test_fast_vs_reference_corner_ladder(self, column):
        rng = np.random.default_rng(6)
        dvth = rng.normal(0.0, 0.03, size=(8, 6)) * 4.0
        dvth[0] = [0.55, -0.55, 0.55, -0.55, 0.55, -0.55]
        d_f = column.differential_at_wl_fall_batch(dvth, n_steps=200, kernel="fast")
        d_r = column.differential_at_wl_fall_batch(dvth, n_steps=200, kernel="reference")
        np.testing.assert_allclose(d_f, d_r, rtol=1e-6)

    def test_compiled_vs_scalar(self, column):
        rng = np.random.default_rng(7)
        dvth = rng.normal(0.0, 0.03, size=(3, 6))
        batch = column.differential_at_wl_fall_batch(dvth)
        names = column.accessed_device_names()
        for i in range(3):
            scalar = column.differential_at_wl_fall(
                {n: float(dvth[i, j]) for j, n in enumerate(names)}
            )
            assert batch[i] == pytest.approx(scalar, rel=0.02)

    def test_access_times_vs_scalar(self, column):
        """Bulk access times against the scalar column testbench
        (adaptive integrator): cross-validation budget."""
        rng = np.random.default_rng(21)
        dvth = np.zeros((3, 24))
        dvth[:, :6] = rng.normal(0.0, 0.03, size=(3, 6))
        batch = column.access_times_batch(dvth, n_steps=400)
        names = column.accessed_device_names()
        for i in range(3):
            scalar = column.access_sample(
                {n: float(dvth[i, j]) for j, n in enumerate(names)}
            )
            assert batch[i] == pytest.approx(scalar.value, rel=XVAL_REL)

    def test_leaker_variation_matters(self, column):
        """A strongly leaking pass gate on an unaccessed cell must slow
        the read — the axis the bulk entry point exists to expose."""
        nominal = column.access_times_batch(np.zeros((1, 24)), n_steps=200)[0]
        dvth = np.zeros((1, 24))
        # Leaker 0's BLB-side pass gate: much lower Vth leaks BLB harder.
        names = column.all_device_names()
        dvth[0, names.index("m_pg_r_l0")] = -0.35
        leaky = column.access_times_batch(dvth, n_steps=200)[0]
        assert leaky > nominal

    def test_access_times_bad_matrix_shape(self, column):
        with pytest.raises(ValueError, match="delta_vth matrix shape"):
            column.access_times_batch(np.zeros((4, 6)), n_steps=160)

    def test_leakage_erodes_differential(self, column):
        """Physics check on the compiled path: more adversarial leakers
        must erode the wl-fall differential."""
        long_col = ReadColumn(config=ColumnConfig(n_leakers=8))
        dvth = np.zeros((1, 6))
        short = column.differential_at_wl_fall_batch(dvth, n_steps=200)[0]
        long_ = long_col.differential_at_wl_fall_batch(dvth, n_steps=200)[0]
        assert long_ < short


class TestWriteTestbenchBatch:
    @pytest.fixture(scope="class")
    def bench(self):
        return WriteTestbench()

    def test_fast_vs_reference_ladder(self, bench):
        rng = np.random.default_rng(8)
        u = rng.normal(0.0, 1.0, size=(16, 6))
        m_f = bench.trip_times_batch(u, n_steps=240, kernel="fast")
        m_r = bench.trip_times_batch(u, n_steps=240, kernel="reference")
        np.testing.assert_allclose(m_f, m_r, rtol=1e-9)

    def test_compiled_vs_scalar(self, bench):
        # Backward Euler is first order: the ~25 ps trip needs a dense
        # grid to meet the cross-validation budget against the adaptive
        # engine (the same reason test_cross_validation runs the 6T
        # engine at n_steps=900).
        rng = np.random.default_rng(9)
        u = rng.normal(0.0, 1.2, size=(4, 6))
        batch = bench.trip_times_batch(u, n_steps=1600)
        for i in range(4):
            assert batch[i] == pytest.approx(bench.metric(u[i]), rel=0.06)

    def test_simulation_counter_billed(self, bench):
        before = bench.n_simulations
        bench.trip_times_batch(np.zeros((3, 6)))
        assert bench.n_simulations == before + 3
