"""Sense-amplifier latch tests: resolution, offset, and the linear model."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.sram.senseamp import SA_DEVICE_ORDER, SenseAmp, SenseAmpDesign


@pytest.fixture(scope="module")
def sa():
    return SenseAmp()


class TestResolve:
    def test_positive_dv_resolves_correctly(self, sa):
        correct, t_res = sa.resolve(0.1)
        assert correct
        assert 0 < t_res < 1e-9

    def test_negative_dv_resolves_the_other_way(self, sa):
        correct, _ = sa.resolve(-0.1)
        assert not correct

    def test_larger_dv_resolves_faster(self, sa):
        _, t_small = sa.resolve(0.05)
        _, t_large = sa.resolve(0.25)
        assert t_large < t_small

    def test_variation_restored(self, sa):
        sa.resolve(0.1, {"m_sn_l": 0.05})
        assert sa.circuit["m_sn_l"].delta_vth == 0.0

    def test_simulation_counter(self, sa):
        before = sa.n_simulations
        sa.resolve(0.1)
        assert sa.n_simulations == before + 1


class TestOffset:
    def test_nominal_offset_near_zero(self, sa):
        assert abs(sa.offset()) < 0.01  # symmetric latch

    def test_weak_left_nmos_needs_more_differential(self, sa):
        off = sa.offset({"m_sn_l": 0.05})
        assert off == pytest.approx(0.05, abs=0.01)

    def test_weak_right_nmos_helps(self, sa):
        off = sa.offset({"m_sn_r": 0.05})
        assert off == pytest.approx(-0.05, abs=0.01)

    def test_pmos_mismatch_negligible_for_precharge_high_latch(self, sa):
        # The decision is made during the NMOS race; the PMOS pair is
        # still off.  This is topology physics, not an approximation bug.
        off = sa.offset({"m_sp_r": 0.05})
        assert abs(off) < 0.01

    def test_out_of_range_offset_raises(self, sa):
        with pytest.raises(MeasurementError):
            sa.offset({"m_sn_l": 0.5}, dv_max=0.1)


class TestLinearModel:
    def test_matches_bisection_on_nmos_patterns(self, sa):
        sig = sa.design.vth_sigmas()
        patterns = [
            {"m_sn_l": 0.04},
            {"m_sn_l": 0.04, "m_sn_r": -0.03},
        ]
        for pattern in patterns:
            u = np.zeros((1, 4))
            for name, shift in pattern.items():
                idx = SA_DEVICE_ORDER.index(name)
                u[0, idx] = shift / sig[idx]
            linear = sa.offset_linear(u)[0]
            bisect = sa.offset(pattern)
            assert linear == pytest.approx(bisect, abs=0.012)

    def test_vectorised_shape(self, sa):
        u = np.random.default_rng(0).normal(size=(7, 4))
        out = sa.offset_linear(u)
        assert out.shape == (7,)

    def test_wrong_width_rejected(self, sa):
        with pytest.raises(MeasurementError):
            sa.offset_linear(np.zeros((2, 3)))

    def test_gm_ratio_small_for_this_topology(self, sa):
        assert sa.gm_ratio() < 0.05


class TestDesign:
    def test_bigger_devices_smaller_sigma(self):
        small = SenseAmpDesign().vth_sigmas()
        big = SenseAmpDesign(w_sn=800e-9, w_sp=480e-9).vth_sigmas()
        assert np.all(big < small)

    def test_sigma_order_matches_device_order(self):
        sig = SenseAmpDesign().vth_sigmas()
        assert sig.shape == (4,)
        assert sig[0] == sig[2]  # both NMOS
        assert sig[1] == sig[3]  # both PMOS
