"""Per-sample read-threshold (dv_spec) support in the batched engine."""

import numpy as np
import pytest

from repro.sram.batched import Batched6T


@pytest.fixture(scope="module")
def engine():
    return Batched6T(n_steps=300)


class TestPerSampleThreshold:
    def test_scalar_override_matches_engine_default(self, engine):
        z = np.zeros((1, 6))
        default = engine.read(z).metric[0]
        override = engine.read(z, dv_spec=engine.dv_spec).metric[0]
        assert override == pytest.approx(default, rel=1e-12)

    def test_higher_threshold_longer_access(self, engine):
        z = np.zeros((3, 6))
        thresholds = np.array([0.08, 0.12, 0.20])
        metrics = engine.read(z, dv_spec=thresholds).metric
        assert metrics[0] < metrics[1] < metrics[2]

    def test_per_sample_vector_matches_individual_runs(self, engine):
        rng = np.random.default_rng(0)
        dv = rng.normal(0, 0.02, size=(4, 6))
        thresholds = np.array([0.08, 0.12, 0.16, 0.20])
        together = engine.read(dv, dv_spec=thresholds).metric
        separate = np.array([
            engine.read(dv[i : i + 1], dv_spec=thresholds[i]).metric[0]
            for i in range(4)
        ])
        np.testing.assert_allclose(together, separate, rtol=1e-10)

    def test_unreachable_threshold_penalised(self, engine):
        # A threshold above the full bitline swing never crosses: the
        # metric lands in the penalty branch, scaled by the shortfall.
        z = np.zeros((1, 6))
        r = engine.read(z, dv_spec=2.0)
        assert not r.event_found[0]
        assert r.metric[0] > engine.timing.t_stop

    def test_penalty_transition_monotone_and_bounded(self, engine):
        # Around the final achieved differential the measured branch
        # climbs steeply (the bitline differential plateaus, so the
        # crossing time diverges toward the window end) and hands over to
        # the penalty branch: the metric must stay monotone in the
        # threshold and the handover gap bounded by the hold window.
        z = np.zeros((1, 6))
        final_dv = engine.read(z).aux["diff_final"][0]
        just_below = engine.read(z, dv_spec=final_dv - 1e-4).metric[0]
        just_above = engine.read(z, dv_spec=final_dv + 1e-4).metric[0]
        assert just_above >= just_below
        assert just_above - just_below < engine.timing.t_hold + engine.timing.wl_fall

    def test_broadcasting_scalar(self, engine):
        z = np.zeros((5, 6))
        r = engine.read(z, dv_spec=0.15)
        assert np.allclose(r.metric, r.metric[0])
