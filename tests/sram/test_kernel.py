"""Fused fast kernel: equivalence with the reference path, solve4, retirement."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sram.batched import Batched6T
from repro.sram.kernel import solve4

N_STEPS = 300


@pytest.fixture(scope="module")
def engines():
    return {
        "reference": Batched6T(n_steps=N_STEPS, kernel="reference"),
        "fast": Batched6T(n_steps=N_STEPS, kernel="fast", retire=False),
    }


def nominal_batch(rng, n=64, sigma=0.03):
    dvth = rng.normal(0.0, sigma, size=(n, 6))
    bmult = 1.0 + rng.normal(0.0, 0.05, size=(n, 6))
    return dvth, bmult


def sss_corner_batch(rng, n=32):
    """Sigma-scaled corners as SSS visits them: |delta vth| pushed past 0.5 V."""
    dvth = rng.normal(0.0, 0.03, size=(n, 6)) * 4.0
    dvth[0] = [0.55, -0.55, 0.55, -0.55, 0.55, -0.55]
    dvth[1] = [-0.6, 0.6, -0.6, 0.6, -0.6, 0.6]
    bmult = 1.0 + rng.normal(0.0, 0.05, size=(n, 6))
    return dvth, bmult


class TestSolve4:
    def test_matches_lapack_on_random_stacks(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(200, 4, 4)) + 4.0 * np.eye(4)
        b = rng.normal(size=(200, 4))
        ref = np.linalg.solve(a, b[..., None])[..., 0]
        x = solve4(
            np.ascontiguousarray(a.transpose(1, 2, 0)),
            np.ascontiguousarray(b.T),
        )
        np.testing.assert_allclose(x.T, ref, rtol=1e-10, atol=1e-12)

    def test_pivot_guard_falls_back_to_lapack(self):
        # A matrix whose (0, 0) pivot vanishes: the natural-order
        # elimination is invalid and the guard must reroute the sample
        # through the row-pivoted solver.
        a = np.array([[0.0, 1.0, 0.0, 0.0],
                      [1.0, 0.0, 0.0, 0.0],
                      [0.0, 0.0, 1.0, 0.0],
                      [0.0, 0.0, 0.0, 1.0]])
        b = np.array([1.0, 2.0, 3.0, 4.0])
        stack_a = np.repeat(a[:, :, None], 3, axis=2)
        stack_b = np.repeat(b[:, None], 3, axis=1)
        x = solve4(stack_a, stack_b)
        np.testing.assert_allclose(x[:, 0], [2.0, 1.0, 3.0, 4.0], rtol=1e-12)

    def test_inputs_not_mutated(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(4, 4, 8)) + 4.0 * np.eye(4)[:, :, None]
        b = rng.normal(size=(4, 8))
        a0, b0 = a.copy(), b.copy()
        solve4(a, b)
        np.testing.assert_array_equal(a, a0)
        np.testing.assert_array_equal(b, b0)


class TestFastVsReference:
    @pytest.mark.parametrize("mode", ["read", "write"])
    def test_nominal_agreement(self, engines, mode):
        rng = np.random.default_rng(7)
        dvth, bmult = nominal_batch(rng)
        r_ref = getattr(engines["reference"], mode)(dvth, bmult)
        r_fast = getattr(engines["fast"], mode)(dvth, bmult)
        np.testing.assert_allclose(r_fast.metric, r_ref.metric, rtol=1e-9)
        np.testing.assert_array_equal(r_fast.event_found, r_ref.event_found)
        np.testing.assert_array_equal(r_fast.converged, r_ref.converged)
        for key in r_ref.aux:
            np.testing.assert_allclose(
                r_fast.aux[key], r_ref.aux[key], rtol=1e-9, atol=1e-12
            )

    @pytest.mark.parametrize("mode", ["read", "write"])
    def test_sss_scale_corner_agreement(self, mode):
        """|delta vth| > 0.5 V corners, where damped Newton works hardest.

        A few such samples legitimately exhaust the Newton budget (in
        both kernels), so the engines run with a loose fail-fraction
        guard and the comparison is pinned on the samples both kernels
        converged — plus agreement of the convergence flags themselves.
        """
        rng = np.random.default_rng(11)
        dvth, bmult = sss_corner_batch(rng)
        ref = Batched6T(n_steps=N_STEPS, kernel="reference", max_fail_fraction=0.2)
        fast = Batched6T(
            n_steps=N_STEPS, kernel="fast", retire=False, max_fail_fraction=0.2
        )
        r_ref = getattr(ref, mode)(dvth, bmult)
        r_fast = getattr(fast, mode)(dvth, bmult)
        np.testing.assert_array_equal(r_fast.converged, r_ref.converged)
        np.testing.assert_array_equal(r_fast.event_found, r_ref.event_found)
        ok = r_ref.converged
        assert ok.mean() > 0.9
        np.testing.assert_allclose(r_fast.metric[ok], r_ref.metric[ok], rtol=1e-6)

    def test_per_sample_dv_spec_agreement(self, engines):
        rng = np.random.default_rng(3)
        dvth, bmult = nominal_batch(rng, n=16)
        dv = rng.uniform(0.08, 0.2, size=16)
        r_ref = engines["reference"].read(dvth, bmult, dv_spec=dv)
        r_fast = engines["fast"].read(dvth, bmult, dv_spec=dv)
        np.testing.assert_allclose(r_fast.metric, r_ref.metric, rtol=1e-9)

    def test_simulation_counters_match(self):
        ref = Batched6T(n_steps=N_STEPS, kernel="reference")
        fast = Batched6T(n_steps=N_STEPS, kernel="fast")
        dvth = np.zeros((5, 6))
        ref.read(dvth)
        fast.read(dvth)
        assert ref.n_simulations == fast.n_simulations == 5

    def test_invalid_kernel_rejected(self):
        with pytest.raises(SimulationError):
            Batched6T(kernel="turbo")


class TestRetirement:
    def test_metric_identity_read(self):
        """Retirement must not change the metric: the crossing is recorded
        before a sample retires and the penalty branch never retires."""
        rng = np.random.default_rng(5)
        dvth, bmult = nominal_batch(rng, n=128)
        # Mix in hopeless samples (no crossing) so both branches are hit.
        dvth[:8] += 0.4
        on = Batched6T(n_steps=N_STEPS, kernel="fast", retire=True)
        off = Batched6T(n_steps=N_STEPS, kernel="fast", retire=False)
        r_on = on.read(dvth, bmult)
        r_off = off.read(dvth, bmult)
        np.testing.assert_allclose(r_on.metric, r_off.metric, rtol=1e-7, atol=1e-15)
        np.testing.assert_array_equal(r_on.event_found, r_off.event_found)

    def test_disturb_peak_identity(self):
        """q_peak is settled once the wordline falls — retirement must not
        change the read-disturb metric either."""
        rng = np.random.default_rng(6)
        dvth, bmult = nominal_batch(rng, n=96)
        on = Batched6T(n_steps=N_STEPS, kernel="fast", retire=True)
        off = Batched6T(n_steps=N_STEPS, kernel="fast", retire=False)
        np.testing.assert_allclose(
            on.read(dvth, bmult).aux["q_peak"],
            off.read(dvth, bmult).aux["q_peak"],
            rtol=1e-9,
            atol=1e-15,
        )

    def test_write_mode_unaffected(self):
        rng = np.random.default_rng(8)
        dvth, bmult = nominal_batch(rng, n=32)
        on = Batched6T(n_steps=N_STEPS, kernel="fast", retire=True)
        off = Batched6T(n_steps=N_STEPS, kernel="fast", retire=False)
        r_on = on.write(dvth, bmult)
        r_off = off.write(dvth, bmult)
        np.testing.assert_array_equal(r_on.metric, r_off.metric)
        assert on.n_sample_steps == off.n_sample_steps

    def test_per_step_cost_tracks_active_samples(self):
        """Regression: the per-step cost must shrink with the retired
        fraction — a batch that crosses early must integrate measurably
        fewer sample-steps than its retirement-off twin, while a batch
        that never crosses saves nothing."""
        n = 128
        crossing = np.zeros((n, 6))  # nominal cells cross early
        stuck = np.zeros((n, 6))  # dead pass gates: bitline never moves
        stuck[:, 2] = stuck[:, 5] = 0.8
        on = Batched6T(n_steps=N_STEPS, kernel="fast", retire=True)
        off = Batched6T(n_steps=N_STEPS, kernel="fast", retire=False)

        on.read(crossing)
        off.read(crossing)
        steps_on, steps_off = on.n_sample_steps, off.n_sample_steps
        assert steps_on < 0.9 * steps_off

        on.n_sample_steps = off.n_sample_steps = 0
        on.read(stuck)
        off.read(stuck)
        assert on.n_sample_steps == off.n_sample_steps

    def test_more_retirees_do_not_cost_more_tail_steps(self):
        """Doubling the early-crossing population doubles the pre-
        retirement work but the retired tail stays retired: per-sample
        step counts must not grow with the retired fraction."""
        eng = Batched6T(n_steps=N_STEPS, kernel="fast", retire=True)
        eng.read(np.zeros((64, 6)))
        per_sample_64 = eng.n_sample_steps / 64
        eng.n_sample_steps = 0
        eng.read(np.zeros((128, 6)))
        per_sample_128 = eng.n_sample_steps / 128
        assert per_sample_128 == pytest.approx(per_sample_64, rel=0.02)
