"""Read/write testbench tests on the reference MNA engine.

These run full transients, so sample counts are kept small; statistical
behaviour is tested against the batched engine elsewhere.
"""

import numpy as np
import pytest

from repro.sram.testbench import OperationTiming, ReadTestbench, WriteTestbench


@pytest.fixture(scope="module")
def read_bench():
    return ReadTestbench()


@pytest.fixture(scope="module")
def write_bench():
    return WriteTestbench()


class TestOperationTiming:
    def test_t_stop_composition(self):
        t = OperationTiming(wl_delay=1e-9, wl_rise=0.1e-9, wl_fall=0.1e-9,
                            wl_width=2e-9, t_hold=0.5e-9)
        assert t.t_stop == pytest.approx(3.7e-9)


class TestReadTestbench:
    def test_nominal_read_succeeds(self, read_bench):
        s = read_bench.access_sample(None)
        assert s.event_found
        assert 1e-12 < s.value < 1e-9

    def test_dimension_is_six(self, read_bench):
        assert read_bench.dim == 6

    def test_include_beta_doubles_dimension(self):
        assert ReadTestbench(include_beta=True).dim == 12

    def test_weak_passgate_slows_read(self, read_bench):
        nominal = read_bench.metric(None)
        # +3 sigma on the left pass-gate threshold (axis 2).
        u = np.zeros(6)
        u[2] = 3.0
        slow = read_bench.metric(u)
        assert slow > 1.3 * nominal

    def test_strong_passgate_speeds_read(self, read_bench):
        nominal = read_bench.metric(None)
        u = np.zeros(6)
        u[2] = -3.0
        assert read_bench.metric(u) < nominal

    def test_variation_reset_after_metric(self, read_bench):
        u = np.full(6, 2.0)
        read_bench.metric(u)
        for mos in read_bench.circuit.mosfets():
            assert mos.delta_vth == 0.0
            assert mos.beta_mult == 1.0

    def test_disturb_peak_small_at_nominal(self, read_bench):
        peak = read_bench.disturb_metric(None)
        assert 0.0 < peak < 0.45  # read bump exists but cell holds

    def test_simulation_counter_increments(self):
        bench = ReadTestbench()
        before = bench.n_simulations
        bench.metric(None)
        bench.metric(np.zeros(6))
        assert bench.n_simulations == before + 2


class TestWriteTestbench:
    def test_nominal_write_succeeds(self, write_bench):
        s = write_bench.trip_sample(None)
        assert s.event_found
        assert 1e-12 < s.value < 1e-9
        # After the operation the cell must hold the written value.
        assert s.aux["q_final"] < 0.1
        assert s.aux["qb_final"] > 0.9

    def test_weak_passgate_slows_write(self, write_bench):
        nominal = write_bench.metric(None)
        u = np.zeros(6)
        u[2] = 3.0  # left pass gate weaker
        assert write_bench.metric(u) > nominal

    def test_strong_pullup_fights_write(self, write_bench):
        nominal = write_bench.metric(None)
        u = np.zeros(6)
        u[0] = -3.0  # left pull-up stronger (negative shift = stronger)
        assert write_bench.metric(u) > nominal
