"""Column testbench tests: loading, leakage, data-pattern dependence."""

import pytest

from repro.sram.column import CBL_PER_CELL, CBL_WIRE, ColumnConfig, ReadColumn
from repro.sram.testbench import OperationTiming

#: Short wordline pulse keeps these full-MNA transients affordable.
FAST = OperationTiming(wl_width=1.0e-9, t_hold=0.2e-9)


@pytest.fixture(scope="module")
def small_column():
    return ReadColumn(config=ColumnConfig(n_leakers=3), timing=FAST)


class TestConfig:
    def test_cap_estimate_scales_with_cells(self):
        c0 = ColumnConfig(n_leakers=0).bitline_cap()
        c15 = ColumnConfig(n_leakers=15).bitline_cap()
        assert c15 == pytest.approx(c0 + 15 * CBL_PER_CELL)
        assert c0 == pytest.approx(CBL_WIRE + CBL_PER_CELL)

    def test_explicit_cap_wins(self):
        assert ColumnConfig(cbl=5e-15).bitline_cap() == 5e-15

    def test_bad_data_pattern_rejected(self):
        with pytest.raises(ValueError):
            ReadColumn(config=ColumnConfig(leaker_data="random"), timing=FAST)


class TestStructure:
    def test_device_count(self, small_column):
        assert len(small_column.circuit.mosfets()) == 6 * 4  # accessed + 3 leakers

    def test_accessed_device_names(self, small_column):
        names = small_column.accessed_device_names()
        assert names[0] == "m_pu_l_a"
        assert all(n.endswith("_a") for n in names)


class TestReadBehaviour:
    def test_nominal_read_succeeds(self, small_column):
        sample = small_column.access_sample()
        assert sample.event_found
        assert 1e-12 < sample.value < 2e-9

    def test_leakers_hold_state(self, small_column):
        res = small_column.simulate()
        # Adversarial leakers store q=1; they must still hold it at the end.
        assert res.final_voltage("q_l0") > 0.9
        assert res.final_voltage("qb_l0") < 0.1

    def test_adversarial_pattern_erodes_differential(self):
        adv = ReadColumn(config=ColumnConfig(n_leakers=6, leaker_data="adversarial",
                                             cbl=4e-15), timing=FAST)
        frnd = ReadColumn(config=ColumnConfig(n_leakers=6, leaker_data="friendly",
                                              cbl=4e-15), timing=FAST)
        assert adv.differential_at_wl_fall() < frnd.differential_at_wl_fall()

    def test_weak_passgate_slows_column_read(self, small_column):
        nominal = small_column.access_sample().value
        slow = small_column.access_sample({"m_pg_l_a": 0.1}).value
        assert slow > 1.2 * nominal

    def test_variation_restored_after_run(self, small_column):
        small_column.access_sample({"m_pg_l_a": 0.1})
        assert small_column.circuit["m_pg_l_a"].delta_vth == 0.0

    def test_simulation_counter(self, small_column):
        before = small_column.n_simulations
        small_column.simulate()
        assert small_column.n_simulations == before + 1
