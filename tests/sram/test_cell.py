"""6T cell builder tests."""

import pytest

from repro.sram.cell import CELL_DEVICE_ORDER, CellDesign, build_cell, cell_device_names


class TestCellDesign:
    def test_default_ratios(self):
        d = CellDesign()
        assert d.cell_ratio == pytest.approx(1.4)
        assert d.pullup_ratio == pytest.approx(1.25)

    def test_scaled_preserves_ratios(self):
        d = CellDesign().scaled(2.0)
        assert d.w_pd == pytest.approx(280e-9)
        assert d.cell_ratio == pytest.approx(1.4)
        assert d.l == CellDesign().l  # length untouched

    def test_frozen(self):
        with pytest.raises(Exception):
            CellDesign().w_pd = 1.0


class TestBuildCell:
    def test_canonical_device_names(self):
        c = build_cell()
        for name in CELL_DEVICE_ORDER:
            assert name in c

    def test_six_transistors(self):
        assert len(build_cell().mosfets()) == 6

    def test_cross_coupling(self):
        c = build_cell()
        # Left inverter output is q, driven by qb.
        pu_l = c["m_pu_l"]
        assert pu_l.terminals[0] == "q"    # drain
        assert pu_l.terminals[1] == "qb"   # gate
        pd_r = c["m_pd_r"]
        assert pd_r.terminals[0] == "qb"
        assert pd_r.terminals[1] == "q"

    def test_access_transistors_on_wordline(self):
        c = build_cell()
        assert c["m_pg_l"].terminals[1] == "wl"
        assert c["m_pg_r"].terminals[1] == "wl"
        assert c["m_pg_l"].terminals[0] == "bl"
        assert c["m_pg_r"].terminals[0] == "blb"

    def test_polarities(self):
        c = build_cell()
        assert c["m_pu_l"].model.polarity == -1
        assert c["m_pd_l"].model.polarity == +1
        assert c["m_pg_l"].model.polarity == +1

    def test_geometries_applied(self):
        d = CellDesign(w_pd=200e-9, w_pg=120e-9, w_pu=90e-9)
        c = build_cell(d)
        assert c["m_pd_l"].w == pytest.approx(200e-9)
        assert c["m_pg_r"].w == pytest.approx(120e-9)
        assert c["m_pu_r"].w == pytest.approx(90e-9)

    def test_suffix_for_columns(self):
        c = build_cell(suffix="_c0")
        c2 = build_cell(circuit=c, suffix="_c1", q="q1", qb="qb1")
        assert "m_pd_l_c0" in c2
        assert "m_pd_l_c1" in c2
        assert len(c2.mosfets()) == 12

    def test_cell_device_names_helper(self):
        assert cell_device_names("_x") == [n + "_x" for n in CELL_DEVICE_ORDER]
