"""Batched 6T engine tests: behaviour, chunking, validation, errors."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sram.batched import Batched6T
from repro.sram.cell import CellDesign


@pytest.fixture(scope="module")
def engine():
    return Batched6T(n_steps=300)


class TestReadOperation:
    def test_nominal_read_develops(self, engine):
        r = engine.read(np.zeros((1, 6)))
        assert r.event_found[0]
        assert r.converged[0]
        assert 1e-12 < r.metric[0] < 1e-9

    def test_weak_passgate_slows(self, engine):
        base = engine.read(np.zeros((1, 6))).metric[0]
        dv = np.zeros((1, 6))
        dv[0, 2] = 0.12  # +0.12 V on left pass gate
        assert engine.read(dv).metric[0] > 1.3 * base

    def test_vectorised_matches_individual(self, engine):
        rng = np.random.default_rng(7)
        dv = rng.normal(0, 0.03, size=(5, 6))
        together = engine.read(dv).metric
        separate = np.array([engine.read(dv[i : i + 1]).metric[0] for i in range(5)])
        np.testing.assert_allclose(together, separate, rtol=1e-10)

    def test_chunking_equivalence(self):
        rng = np.random.default_rng(8)
        dv = rng.normal(0, 0.03, size=(30, 6))
        big = Batched6T(n_steps=300, chunk_size=1000).read(dv).metric
        small = Batched6T(n_steps=300, chunk_size=7).read(dv).metric
        np.testing.assert_allclose(big, small, rtol=1e-10)

    def test_disturb_peak_positive(self, engine):
        peaks = engine.read_disturb_peaks(np.zeros((1, 6)))
        assert 0.0 < peaks[0] < 0.45

    def test_disturb_grows_with_weak_pulldown(self, engine):
        base = engine.read_disturb_peaks(np.zeros((1, 6)))[0]
        dv = np.zeros((1, 6))
        dv[0, 1] = 0.15  # weaken left pull-down
        assert engine.read_disturb_peaks(dv)[0] > base

    def test_simulation_counter(self, engine):
        before = engine.n_simulations
        engine.read(np.zeros((4, 6)))
        assert engine.n_simulations == before + 4


class TestWriteOperation:
    def test_nominal_write_flips(self, engine):
        r = engine.write(np.zeros((1, 6)))
        assert r.event_found[0]
        assert r.aux["q_final"][0] < 0.1
        assert r.aux["qb_final"][0] > 0.9

    def test_strong_pullup_slows_write(self, engine):
        base = engine.write(np.zeros((1, 6))).metric[0]
        dv = np.zeros((1, 6))
        dv[0, 0] = -0.12  # stronger left pull-up fights the write
        assert engine.write(dv).metric[0] > base

    def test_extreme_skew_write_failure_penalised(self, engine):
        dv = np.zeros((1, 6))
        dv[0, 2] = 0.5   # pass gate nearly dead
        dv[0, 0] = -0.3  # pull-up very strong
        r = engine.write(dv)
        assert not r.event_found[0]
        assert r.metric[0] > engine.timing.t_stop - 1e-9


class TestValidation:
    def test_wrong_vth_shape_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.read(np.zeros((2, 5)))

    def test_mismatched_beta_shape_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.read(np.zeros((2, 6)), np.ones((3, 6)))

    def test_beta_variation_changes_metric(self, engine):
        base = engine.read(np.zeros((1, 6))).metric[0]
        bmult = np.ones((1, 6))
        bmult[0, 2] = 0.7  # weaker pass gate current factor
        slow = engine.read(np.zeros((1, 6)), bmult).metric[0]
        assert slow > base


class TestGridAndDesign:
    def test_metric_stable_under_grid_refinement(self):
        dv = np.zeros((1, 6))
        coarse = Batched6T(n_steps=300).read(dv).metric[0]
        fine = Batched6T(n_steps=900).read(dv).metric[0]
        assert coarse == pytest.approx(fine, rel=0.02)

    def test_larger_cell_reads_faster(self):
        small = Batched6T(n_steps=300).read(np.zeros((1, 6))).metric[0]
        big_design = CellDesign().scaled(1.5)
        big = Batched6T(design=big_design, n_steps=300).read(np.zeros((1, 6))).metric[0]
        assert big < small

    def test_lower_vdd_reads_slower(self):
        v10 = Batched6T(vdd=1.0, n_steps=300).read(np.zeros((1, 6))).metric[0]
        v07 = Batched6T(vdd=0.7, n_steps=300).read(np.zeros((1, 6))).metric[0]
        assert v07 > 1.5 * v10

    def test_bigger_bitline_cap_slower(self):
        c10 = Batched6T(cbl=10e-15, n_steps=300).read(np.zeros((1, 6))).metric[0]
        c30 = Batched6T(cbl=30e-15, n_steps=300).read(np.zeros((1, 6))).metric[0]
        assert c30 > 2.0 * c10
