"""F8 (extension) — system-level read yield: cell + sense amplifier.

Beyond the paper's single-cell scope: the read path's failure rate with
the sense amplifier's input-referred offset folded in as four extra
variation axes.  At the same spec corner, the system sigma must come in
*below* the cell-only sigma — margin the single-cell analysis silently
hands to an assumed-ideal sense amp — and the MPFP must show both
subsystems participating.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.tables import render_table
from repro.experiments.workloads import (
    calibrate_read_spec,
    make_read_limitstate,
    make_system_read_limitstate,
)
from repro.highsigma.gis import GradientImportanceSampling
from repro.sram.senseamp import SenseAmpDesign

N_STEPS = 400


def extract(ls, seed):
    res = GradientImportanceSampling(ls, n_max=4000, target_rel_err=0.1).run(
        np.random.default_rng(seed)
    )
    return res


def test_f8_system_level(benchmark, emit):
    def experiment():
        spec = calibrate_read_spec(sigma_target=5.0, n_steps=N_STEPS)
        rows = []

        cell = extract(make_read_limitstate(spec, n_steps=N_STEPS), 0)
        rows.append({
            "workload": "cell only (d=6)",
            "p_fail": cell.p_fail, "sigma": cell.sigma_level,
            "n_evals": cell.n_evals,
        })

        system = extract(make_system_read_limitstate(spec, n_steps=N_STEPS), 1)
        u_star = np.array(system.diagnostics["mpfp_u"][0])
        rows.append({
            "workload": "cell + sense amp (d=10)",
            "p_fail": system.p_fail, "sigma": system.sigma_level,
            "n_evals": system.n_evals,
        })

        # A 4x-area (2x W) sense amp recovers most of the margin.
        big_sa = SenseAmpDesign(w_sn=800e-9, w_sp=480e-9)
        system_big = extract(
            make_system_read_limitstate(spec, sa_design=big_sa, n_steps=N_STEPS), 2
        )
        rows.append({
            "workload": "cell + 4x-area sense amp",
            "p_fail": system_big.p_fail, "sigma": system_big.sigma_level,
            "n_evals": system_big.n_evals,
        })
        return rows, u_star, spec

    rows, u_star, spec = run_once(benchmark, experiment)
    text = render_table(
        rows, ["workload", "p_fail", "sigma", "n_evals"],
        title=f"F8: system-level read failure @ spec {spec*1e12:.1f} ps",
    )
    text += (
        "\nsystem MPFP (6 cell axes | 4 latch axes): "
        + np.array2string(u_star, precision=2, suppress_small=True)
    )
    emit("f8_system_level", text)

    cell_sigma = rows[0]["sigma"]
    system_sigma = rows[1]["sigma"]
    big_sigma = rows[2]["sigma"]
    # The sense amp costs real sigma at the same spec...
    assert system_sigma < cell_sigma - 0.2
    # ...and upsizing it recovers most of the loss.
    assert big_sigma > system_sigma + 0.1
    # The failure mechanism is genuinely joint.
    assert np.max(np.abs(u_star[:6])) > 0.5
    assert np.max(np.abs(u_star[6:])) > 0.5
