"""Shared benchmark plumbing.

Each benchmark regenerates one table or figure of the evaluation and
both prints it (visible with ``pytest benchmarks/ -s``) and appends it to
``benchmarks/results/<name>.txt`` so the artefacts survive the run.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def emit():
    """Return a writer: ``emit(name, text)`` prints and persists."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print()
        print(text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    These are scientific experiments, not microbenchmarks: one round,
    one iteration — the wall time recorded is the cost of regenerating
    the table.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
