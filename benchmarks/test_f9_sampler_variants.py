"""F9 (extension) — estimation-stage variants at a fixed shift.

Two optional refinements of the estimation stage, isolated on the
surrogate workload with the *same* gradient-search shift so only the
sampling differs:

* **Sobol QMC vs pseudo-random** mixture sampling: run-to-run spread of
  the estimate over 16 replications at each budget;
* **cross-entropy adaptive IS** as the search-free alternative: same
  final accuracy class, several-times-higher search cost.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.tables import render_series, render_table
from repro.experiments.workloads import surrogate_workload
from repro.highsigma.ce import CrossEntropyIS
from repro.highsigma.estimators import MeanShiftISCore
from repro.highsigma.gis import GradientImportanceSampling

N_RUNS = 16
BUDGETS = (512, 1024, 2048)


def test_f9_sampler_variants(benchmark, emit):
    wl = surrogate_workload(sigma_target=4.5, dim=6)
    exact = wl.exact_pfail

    def experiment():
        # One gradient search supplies the common shift.
        probe = wl.make()
        shift = GradientImportanceSampling(probe).search_mpfps(
            np.random.default_rng(0)
        )[0].u_star

        spread = {"random": [], "qmc": []}
        for budget in BUDGETS:
            for sampler in ("random", "qmc"):
                estimates = []
                for seed in range(N_RUNS):
                    ls = wl.make()
                    core = MeanShiftISCore(
                        ls, shifts=[shift], n_max=budget,
                        target_rel_err=None, sampler=sampler,
                    )
                    estimates.append(
                        core.run(np.random.default_rng(seed), method=sampler).p_fail
                    )
                estimates = np.array(estimates)
                spread[sampler].append(
                    float(np.std(estimates, ddof=1) / np.mean(estimates))
                )

        # Cross-entropy comparison row (search cost + accuracy).
        ce_rows = []
        for seed in range(6):
            try:
                res = CrossEntropyIS(
                    wl.make(), n_per_level=400, n_max=2048, target_rel_err=None
                ).run(np.random.default_rng(100 + seed))
                ce_rows.append(res)
            except Exception:
                continue
        gis_rows = [
            GradientImportanceSampling(
                wl.make(), n_max=2048, target_rel_err=None
            ).run(np.random.default_rng(200 + seed))
            for seed in range(6)
        ]

        def summarise(rows, name):
            errs = [abs(np.log10(r.p_fail / exact)) for r in rows if r.p_fail > 0]
            return {
                "method": name,
                "med_log10_err": float(np.median(errs)),
                "mean_search_evals": float(np.mean(
                    [r.diagnostics["search_evals"] for r in rows])),
                "runs_ok": len(rows),
            }

        table = [summarise(gis_rows, "gradient IS"), summarise(ce_rows, "cross-entropy IS")]
        return spread, table

    spread, table = run_once(benchmark, experiment)
    text = render_series(
        list(BUDGETS),
        {"random_spread": spread["random"], "qmc_spread": spread["qmc"]},
        x_label="budget",
        title=f"F9a: estimate spread over {N_RUNS} runs, fixed gradient shift "
              f"(surrogate @ 4.5 sigma)",
    )
    text += "\n\n" + render_table(
        table, ["method", "med_log10_err", "mean_search_evals", "runs_ok"],
        title="F9b: gradient search vs cross-entropy adaptation (2048-sample stage)",
    )
    emit("f9_sampler_variants", text)

    # Shape: QMC at least matches random spread at every budget (and
    # usually beats it), and the gradient search stays several times
    # cheaper than cross-entropy adaptation.
    wins = sum(q <= r * 1.05 for q, r in zip(spread["qmc"], spread["random"]))
    assert wins >= 2
    assert table[0]["mean_search_evals"] < table[1]["mean_search_evals"] / 3
