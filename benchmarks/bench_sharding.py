"""Sharded-engine benchmark — back-compat shim over ``repro-bench``.

The serial/sharded-1-proc/sharded-W-procs comparison and its
determinism gate (bit-identical estimates across worker counts) are
the ``sharding``-tagged section of :mod:`repro.bench`.  This shim
keeps the historical flags working and now emits the shared JSON
report schema (``--json-out``, default ``BENCH_sharding.json``)
instead of relying on ``tee``'d stdout::

    PYTHONPATH=src python benchmarks/bench_sharding.py --workers 4

The parallel speedup obviously needs free cores: on a 1-CPU container
the pooled run measures fork overhead and nothing else (the report
records the core count so nobody reads a 1-core number as a
regression).
"""

from __future__ import annotations

import argparse
import pathlib
import sys

_ROOT = pathlib.Path(__file__).resolve().parent.parent
try:
    import repro  # noqa: F401
except ImportError:  # direct script invocation without PYTHONPATH=src
    sys.path.insert(0, str(_ROOT / "src"))

from repro.bench.cli import run_and_report  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--n-max", type=int, default=20000)
    parser.add_argument("--n-steps", type=int, default=400)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json-out", type=pathlib.Path,
                        default=pathlib.Path("BENCH_sharding.json"),
                        help="machine-readable report (shared bench schema)")
    args = parser.parse_args()

    return run_and_report(
        tags=["sharding"],
        overrides={
            "sharding-determinism": {
                "workers": args.workers, "n_max": args.n_max,
                "n_steps": args.n_steps, "seed": args.seed,
            },
        },
        json_out=args.json_out,
    )


if __name__ == "__main__":
    raise SystemExit(main())
