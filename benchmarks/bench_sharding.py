"""Wall-clock benchmark of the sharded estimation engine.

Runs the F1-style gradient-IS workload (read-access limit state on the
batched 6T engine) three ways with one pinned shard plan:

* serial baseline  — ``workers=1, n_shards=1`` (the classic loop);
* sharded, 1 proc  — ``workers=1, n_shards=W`` (plan overhead only);
* sharded, W procs — ``workers=W, n_shards=W`` (the parallel path).

It asserts the engine's determinism contract (the two sharded runs must
be bit-identical) and reports the speedup.  This is a *script*, not a
pytest benchmark, so the tier-1 suite does not pay for it::

    PYTHONPATH=src python benchmarks/bench_sharding.py --workers 4

The parallel speedup obviously needs free cores: on a 1-CPU container
the pooled run measures fork overhead and nothing else (the script
prints the core count so nobody reads a 1-core number as a regression).
"""

from __future__ import annotations

import argparse
import os
import time

import numpy as np


def build_limit_state(n_steps: int):
    from repro.experiments.workloads import make_read_limitstate

    # A fixed spec near the 4-sigma point of the default design: accuracy
    # is irrelevant here, only that per-batch work is real engine work.
    from repro.experiments.workloads import calibrate_read_spec

    spec = calibrate_read_spec(sigma_target=4.0, n_steps=n_steps)
    return lambda: make_read_limitstate(spec, n_steps=n_steps)


def run_gis(make_ls, seed, n_max, workers, n_shards):
    from repro.highsigma.gis import GradientImportanceSampling

    ls = make_ls()
    gis = GradientImportanceSampling(
        ls, n_max=n_max, target_rel_err=None, batch_size=256,
        workers=workers, n_shards=n_shards,
    )
    t0 = time.perf_counter()
    res = gis.run(np.random.default_rng(seed))
    wall = time.perf_counter() - t0
    return res, wall, ls.n_evals


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--n-max", type=int, default=20000)
    parser.add_argument("--n-steps", type=int, default=400)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count()
    print(f"cores available : {cores}")
    print(f"workload        : GIS read-access, n_max={args.n_max}, "
          f"n_steps={args.n_steps}, shard plan n_shards={args.workers}")

    make_ls = build_limit_state(args.n_steps)

    serial, t_serial, _ = run_gis(make_ls, args.seed, args.n_max, 1, 1)
    plan1, t_plan1, evals1 = run_gis(make_ls, args.seed, args.n_max, 1, args.workers)
    planw, t_planw, evalsw = run_gis(make_ls, args.seed, args.n_max, args.workers, args.workers)

    print(f"serial (1 shard)        : {t_serial:8.2f} s   p={serial.p_fail:.4e}")
    print(f"sharded plan, 1 worker  : {t_plan1:8.2f} s   p={plan1.p_fail:.4e}")
    print(f"sharded plan, {args.workers} workers : {t_planw:8.2f} s   p={planw.p_fail:.4e}")

    identical = (
        plan1.p_fail == planw.p_fail
        and plan1.std_err == planw.std_err
        and plan1.n_evals == planw.n_evals
        and evals1 == evalsw
    )
    print(f"bit-identical across worker counts: {identical}")
    speedup = t_plan1 / t_planw if t_planw > 0 else float("nan")
    print(f"speedup ({args.workers} workers vs 1): {speedup:.2f}x")
    if cores < args.workers:
        print(f"note: only {cores} core(s) available — parallel speedup "
              f"needs >= {args.workers} free cores")

    if not identical:
        print("FAIL: sharded runs disagree across worker counts")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
