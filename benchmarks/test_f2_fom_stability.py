"""F2 — estimator stability: figure of merit across independent runs.

20 independent replications of each method on the SRAM-surrogate workload
per sampling budget; the empirical relative spread (std/mean over runs)
is the figure of merit the paper plots.  Expected shape: GIS's spread
shrinks like 1/sqrt(n) from an already-small constant; MNIS sits a
multiple above it; SSS's extrapolation noise dominates its curve.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.tables import render_series
from repro.experiments.workloads import surrogate_workload
from repro.highsigma.gis import GradientImportanceSampling
from repro.highsigma.mnis import MinimumNormIS
from repro.highsigma.sss import ScaledSigmaSampling

N_RUNS = 20
BUDGETS = (500, 1000, 2000, 4000)


def spread(estimates):
    estimates = np.array([e for e in estimates if e and np.isfinite(e)])
    if estimates.size < 3:
        return None
    return float(np.std(estimates, ddof=1) / np.mean(estimates))


def test_f2_fom_stability(benchmark, emit):
    wl = surrogate_workload(sigma_target=4.5, dim=6)

    def experiment():
        series = {"gis": [], "mnis": [], "sss": []}
        for budget in BUDGETS:
            gis_est, mnis_est, sss_est = [], [], []
            for seed in range(N_RUNS):
                rng = np.random.default_rng(1000 + seed)
                gis_est.append(
                    GradientImportanceSampling(
                        wl.make(), n_max=budget, target_rel_err=None
                    ).run(rng).p_fail
                )
                rng = np.random.default_rng(2000 + seed)
                try:
                    mnis_est.append(
                        MinimumNormIS(
                            wl.make(), n_presample=budget // 2, n_max=budget,
                            presample_scale=2.5, target_rel_err=None,
                        ).run(rng).p_fail
                    )
                except Exception:
                    mnis_est.append(None)
                rng = np.random.default_rng(3000 + seed)
                try:
                    sss_est.append(
                        ScaledSigmaSampling(
                            wl.make(), n_per_scale=max(200, budget // 5)
                        ).run(rng).p_fail
                    )
                except Exception:
                    sss_est.append(None)
            series["gis"].append(spread(gis_est))
            series["mnis"].append(spread(mnis_est))
            series["sss"].append(spread(sss_est))
        return series

    series = run_once(benchmark, experiment)
    emit(
        "f2_fom_stability",
        render_series(
            list(BUDGETS), series, x_label="budget",
            title=f"F2: run-to-run relative spread over {N_RUNS} runs "
                  f"(surrogate @ 4.5 sigma, exact p = {wl.exact_pfail:.3e})",
        ),
    )

    # Shape: GIS is the most stable method at the largest budget.
    final = {k: v[-1] for k, v in series.items() if v[-1] is not None}
    assert final["gis"] == min(final.values())
    # And its spread shrinks with budget.
    assert series["gis"][-1] < series["gis"][0]
