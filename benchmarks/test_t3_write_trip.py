"""T3 — SRAM write-trip failure table (same comparison as T2, write op).

The write failure mechanism is different physics (pull-up fight instead of
bitline discharge), a different dominant device (pull-up / pass-gate
pair), and a penalty-extended metric when the cell never trips — the
second dynamic characteristic the paper's title promises.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.runners import default_methods, run_comparison
from repro.experiments.tables import render_table
from repro.experiments.workloads import Workload, calibrate_write_spec, make_write_limitstate

COLUMNS = [
    "workload", "method", "p_fail", "sigma", "rel_err", "n_evals",
    "n_failures", "speedup_vs_mc", "converged", "error",
]

N_STEPS = 400


def test_t3_write_trip(benchmark, emit):
    def experiment():
        rows = []
        spec3 = calibrate_write_spec(sigma_target=3.0, n_steps=N_STEPS)
        wl3 = Workload(
            name=f"write-3s(spec={spec3*1e12:.1f}ps)",
            make=lambda: make_write_limitstate(spec3, n_steps=N_STEPS),
            exact_pfail=None,
            dim=6,
        )
        rows.extend(
            run_comparison(
                wl3,
                default_methods(n_max=4000, target_rel_err=0.1, mc_budget=120000),
                seeds=(0,),
            )
        )

        spec5 = calibrate_write_spec(sigma_target=5.0, n_steps=N_STEPS)
        wl5 = Workload(
            name=f"write-5s(spec={spec5*1e12:.1f}ps)",
            make=lambda: make_write_limitstate(spec5, n_steps=N_STEPS),
            exact_pfail=None,
            dim=6,
        )
        rows.extend(
            run_comparison(
                wl5,
                default_methods(n_max=5000, target_rel_err=0.1, mc_budget=50000),
                seeds=(0,),
            )
        )
        return rows

    rows = run_once(benchmark, experiment)
    emit(
        "t3_write_trip",
        render_table(rows, COLUMNS, title="T3: 6T write-trip failure"),
    )

    by = {(r["workload"].split("(")[0], r["method"]): r for r in rows}
    gis3, mc3 = by[("write-3s", "gis")], by[("write-3s", "mc")]
    joint = 1.96 * np.hypot(gis3["std_err"], mc3["std_err"])
    assert abs(gis3["p_fail"] - mc3["p_fail"]) < joint + 0.35 * mc3["p_fail"]
    gis5 = by[("write-5s", "gis")]
    assert 4.0 < gis5["sigma"] < 6.0
    assert gis5["speedup_vs_mc"] > 100
