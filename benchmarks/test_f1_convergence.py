"""F1 — convergence of the estimate vs simulation count (the classic figure).

On the 4-sigma read workload, each sampler's running estimate is recorded
batch by batch.  Expected shape: GIS locks onto a stable value within a
few hundred post-search samples; MNIS wanders (its centre is noisier);
plain MC stays at zero for the whole figure.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.tables import render_series
from repro.experiments.workloads import calibrate_read_spec, make_read_limitstate
from repro.highsigma.estimators import MeanShiftISCore, is_estimate
from repro.highsigma.gis import GradientImportanceSampling
from repro.highsigma.mnis import MinimumNormIS

N_STEPS = 400
BATCH = 250
N_BATCHES = 10


def running_estimates(ls, shifts, rng):
    """Running p-hat after each sampling batch for a mean-shift proposal."""
    core = MeanShiftISCore(ls, shifts=shifts, batch_size=BATCH,
                           n_max=BATCH * N_BATCHES, target_rel_err=None)
    log_w, fails = [], []
    track = []
    for _ in range(N_BATCHES):
        u = core.proposal.sample(BATCH, rng)
        fails.append(ls.fails_batch(u))
        log_w.append(core.proposal.log_weights(u))
        p, _se = is_estimate(np.concatenate(log_w), np.concatenate(fails))
        track.append(p)
    return track


def test_f1_convergence(benchmark, emit):
    def experiment():
        spec = calibrate_read_spec(sigma_target=4.0, n_steps=N_STEPS)

        # GIS shift from the gradient search.
        ls_gis = make_read_limitstate(spec, n_steps=N_STEPS)
        gis = GradientImportanceSampling(ls_gis)
        mpfps = gis.search_mpfps(np.random.default_rng(0))
        gis_track = running_estimates(
            ls_gis, [mpfps[0].u_star], np.random.default_rng(1)
        )

        # MNIS shift from blind pre-sampling.
        ls_mnis = make_read_limitstate(spec, n_steps=N_STEPS)
        mnis = MinimumNormIS(ls_mnis, n_presample=1000, presample_scale=2.5)
        centre = mnis.presample_centre(np.random.default_rng(2))
        mnis_track = running_estimates(ls_mnis, [centre], np.random.default_rng(3))

        # Plain MC running estimate at the same total budget.
        ls_mc = make_read_limitstate(spec, n_steps=N_STEPS)
        rng = np.random.default_rng(4)
        k = 0
        mc_track = []
        for i in range(N_BATCHES):
            u = rng.standard_normal((BATCH, 6))
            k += int(ls_mc.fails_batch(u).sum())
            mc_track.append(k / ((i + 1) * BATCH))

        x = [(i + 1) * BATCH for i in range(N_BATCHES)]
        return x, {"gis": gis_track, "mnis": mnis_track, "mc": mc_track}

    x, series = run_once(benchmark, experiment)
    emit(
        "f1_convergence",
        render_series(x, series, x_label="n_samples",
                      title="F1: running P_fail estimate vs sampling budget "
                            "(read @ 4 sigma)"),
    )

    # Shape assertions: GIS's last few estimates are mutually consistent
    # (converged), and MC saw nothing at this budget.
    gis_tail = series["gis"][-3:]
    assert max(gis_tail) < 3.5 * min(gis_tail)
    assert max(series["mc"]) <= 2.0 / (len(series["mc"]) * BATCH) * len(series["mc"])
