"""F6 — ablations of the gradient-IS design choices.

Three knobs the design section calls out, each isolated on the surrogate
workload (exact truth) plus the gradient-search comparison on the real
circuit living in F3:

* **search stage**: gradient walk vs blind pre-sampling for the shift
  (same estimation stage) — the paper's core claim;
* **defensive mixture weight alpha**: 0 / 0.05 / 0.1 / 0.3 — small alpha
  is efficient when the shift is right, nonzero alpha bounds the damage
  when it is not;
* **covariance shaping**: isotropic vs radial stretch along the shift.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.tables import render_table
from repro.experiments.workloads import surrogate_workload
from repro.highsigma.estimators import MeanShiftISCore
from repro.highsigma.gis import GradientImportanceSampling
from repro.highsigma.mnis import MinimumNormIS

N_RUNS = 12
BUDGET = 3000


def replicate(make_estimator, seed0, exact):
    errs, evals = [], []
    for s in range(N_RUNS):
        try:
            res = make_estimator().run(np.random.default_rng(seed0 + s))
        except Exception:
            continue
        if res.p_fail > 0:
            errs.append(abs(np.log10(res.p_fail) - np.log10(exact)))
            evals.append(res.n_evals)
    if not errs:
        return {"med_log10_err": None, "mean_evals": None, "runs_ok": 0}
    return {
        "med_log10_err": float(np.median(errs)),
        "mean_evals": float(np.mean(evals)),
        "runs_ok": len(errs),
    }


def test_f6_ablation(benchmark, emit):
    wl = surrogate_workload(sigma_target=5.0, dim=6)
    exact = wl.exact_pfail

    def experiment():
        rows = []

        # --- Search-stage ablation --------------------------------------
        rows.append({
            "ablation": "search=gradient (GIS)",
            **replicate(
                lambda: GradientImportanceSampling(
                    wl.make(), n_max=BUDGET, target_rel_err=None
                ), 0, exact),
        })
        rows.append({
            "ablation": "search=blind presample (MNIS)",
            **replicate(
                lambda: MinimumNormIS(
                    wl.make(), n_presample=BUDGET // 3, presample_scale=2.0,
                    n_max=BUDGET, target_rel_err=None,
                ), 100, exact),
        })

        # --- Defensive-alpha ablation ------------------------------------
        for alpha in (0.0, 0.05, 0.1, 0.3):
            rows.append({
                "ablation": f"alpha={alpha:g}",
                **replicate(
                    lambda alpha=alpha: GradientImportanceSampling(
                        wl.make(), n_max=BUDGET, alpha=alpha, target_rel_err=None
                    ), 200, exact),
            })

        # --- Deliberately wrong shift: defensive weight earns its keep ---
        ls_probe = wl.make()
        gis = GradientImportanceSampling(ls_probe)
        u_star = gis.search_mpfps(np.random.default_rng(1))[0].u_star
        bad_shift = np.roll(u_star, 1) * 1.2  # plausible norm, wrong direction

        def bad_shift_core(alpha):
            class _Runner:
                def run(self, rng):
                    ls = wl.make()
                    core = MeanShiftISCore(ls, shifts=[bad_shift], alpha=alpha,
                                           n_max=BUDGET, target_rel_err=None)
                    return core.run(rng, method=f"bad-shift-a{alpha}")
            return _Runner()

        for alpha in (0.0, 0.1):
            rows.append({
                "ablation": f"wrong shift, alpha={alpha:g}",
                **replicate(lambda alpha=alpha: bad_shift_core(alpha), 300, exact),
            })

        # --- Covariance shaping ------------------------------------------
        for stretch in (1.0, 1.5, 2.0):
            rows.append({
                "ablation": f"radial stretch={stretch:g}",
                **replicate(
                    lambda stretch=stretch: GradientImportanceSampling(
                        wl.make(), n_max=BUDGET, cov_stretch_radial=stretch,
                        target_rel_err=None,
                    ), 400, exact),
            })
        return rows

    rows = run_once(benchmark, experiment)
    emit(
        "f6_ablation",
        render_table(
            rows,
            ["ablation", "med_log10_err", "mean_evals", "runs_ok"],
            title=f"F6: gradient-IS ablations (surrogate @ 5 sigma, "
                  f"exact p = {exact:.3e}, {N_RUNS} runs each)",
        ),
    )

    by = {r["ablation"]: r for r in rows}
    # Gradient search beats blind search at equal budget.
    assert (by["search=gradient (GIS)"]["med_log10_err"]
            < (by["search=blind presample (MNIS)"]["med_log10_err"] or 99))
    # With a wrong shift, the defensive component limits the damage.
    wrong0 = by["wrong shift, alpha=0"]["med_log10_err"] or 99
    wrong01 = by["wrong shift, alpha=0.1"]["med_log10_err"] or 99
    assert wrong01 < wrong0
