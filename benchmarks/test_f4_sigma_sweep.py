"""F4 — the qualification curve: extracted sigma vs read-time spec.

Sweeping the access-time spec produces the cell's sigma-vs-margin curve —
the plot a memory designer reads the required timing margin off.  Golden
MC anchors the low-sigma end (where it can see failures); GIS extends the
same curve into the 5+ sigma regime at ~2k simulations per point.
Expected shape: monotone increasing, GIS agreeing with MC where both
exist and extrapolating smoothly beyond.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.tables import render_series
from repro.experiments.workloads import calibrate_read_spec, make_read_limitstate
from repro.highsigma.gis import GradientImportanceSampling
from repro.highsigma.mc import MonteCarloEstimator

N_STEPS = 400
SIGMA_TARGETS = (2.5, 3.0, 3.5, 4.0, 5.0, 6.0)
MC_LIMIT_SIGMA = 3.2  # golden MC only attempted below this
MC_BUDGET = 120000


def test_f4_sigma_sweep(benchmark, emit):
    def experiment():
        specs, gis_sigma, mc_sigma = [], [], []
        for target in SIGMA_TARGETS:
            spec = calibrate_read_spec(sigma_target=target, n_steps=N_STEPS)
            specs.append(spec * 1e12)  # ps for the table

            ls = make_read_limitstate(spec, n_steps=N_STEPS)
            res = GradientImportanceSampling(
                ls, n_max=3000, target_rel_err=0.1
            ).run(np.random.default_rng(int(target * 10)))
            gis_sigma.append(res.sigma_level)

            if target <= MC_LIMIT_SIGMA:
                ls_mc = make_read_limitstate(spec, n_steps=N_STEPS)
                mc = MonteCarloEstimator(ls_mc, n_max=MC_BUDGET, batch_size=8192,
                                         target_rel_err=0.15)
                r = mc.run(np.random.default_rng(99))
                mc_sigma.append(r.sigma_level if r.n_failures >= 5 else None)
            else:
                mc_sigma.append(None)
        return specs, gis_sigma, mc_sigma

    specs, gis_sigma, mc_sigma = run_once(benchmark, experiment)
    emit(
        "f4_sigma_sweep",
        render_series(
            [f"{s:.1f}" for s in specs],
            {"gis_sigma": gis_sigma, "golden_mc_sigma": mc_sigma},
            x_label="spec_ps",
            title="F4: extracted failure sigma vs read-access spec",
        ),
    )

    # Shape: monotone curve; GIS matches golden MC at the anchored points
    # and tracks the calibration targets across the sweep.
    assert all(b > a - 0.15 for a, b in zip(gis_sigma, gis_sigma[1:]))
    for target, got in zip(SIGMA_TARGETS, gis_sigma):
        assert abs(got - target) < 0.5
    anchored = [(g, m) for g, m in zip(gis_sigma, mc_sigma) if m is not None]
    assert anchored, "at least one golden anchor point must exist"
    for g, m in anchored:
        assert abs(g - m) < 0.3
