"""T2 — SRAM read-access-time failure: the headline circuit table.

Two spec corners on the transistor-level batched 6T engine:

* a ~3-sigma corner where a golden Monte Carlo run on the same engine
  resolves the truth — validating the samplers against the circuit, and
* a ~5-sigma corner (the paper's regime) where MC is hopeless and the
  IS methods must agree with each other while reporting orders of
  magnitude fewer simulations than the MC-equivalent cost.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.runners import default_methods, run_comparison
from repro.experiments.tables import render_table
from repro.experiments.workloads import Workload, calibrate_read_spec, make_read_limitstate

COLUMNS = [
    "workload", "method", "p_fail", "sigma", "rel_err", "n_evals",
    "n_failures", "speedup_vs_mc", "converged", "error",
]

N_STEPS = 400


def test_t2_read_access(benchmark, emit):
    def experiment():
        rows = []
        # Corner 1: golden-MC-resolvable (~3 sigma).
        spec3 = calibrate_read_spec(sigma_target=3.0, n_steps=N_STEPS)
        wl3 = Workload(
            name=f"read-3s(spec={spec3*1e12:.1f}ps)",
            make=lambda: make_read_limitstate(spec3, n_steps=N_STEPS),
            exact_pfail=None,
            dim=6,
        )
        methods3 = default_methods(n_max=4000, target_rel_err=0.1, mc_budget=120000)
        rows.extend(run_comparison(wl3, methods3, seeds=(0,)))

        # Corner 2: high-sigma (~5), MC included only to document blindness.
        spec5 = calibrate_read_spec(sigma_target=5.0, n_steps=N_STEPS)
        wl5 = Workload(
            name=f"read-5s(spec={spec5*1e12:.1f}ps)",
            make=lambda: make_read_limitstate(spec5, n_steps=N_STEPS),
            exact_pfail=None,
            dim=6,
        )
        methods5 = default_methods(n_max=5000, target_rel_err=0.1, mc_budget=50000)
        rows.extend(run_comparison(wl5, methods5, seeds=(0,)))
        return rows

    rows = run_once(benchmark, experiment)
    emit(
        "t2_read_access",
        render_table(rows, COLUMNS, title="T2: 6T read-access-time failure"),
    )

    by = {(r["workload"].split("(")[0], r["method"]): r for r in rows}
    gis3 = by[("read-3s", "gis")]
    mc3 = by[("read-3s", "mc")]
    # Golden validation: GIS within the joint CI of the MC truth.
    joint = 1.96 * np.hypot(gis3["std_err"], mc3["std_err"])
    assert abs(gis3["p_fail"] - mc3["p_fail"]) < joint + 0.35 * mc3["p_fail"]
    # Cost shape: GIS uses far fewer sims than MC for comparable error.
    assert gis3["n_evals"] < mc3["n_evals"] / 5

    gis5 = by[("read-5s", "gis")]
    mc5 = by[("read-5s", "mc")]
    assert gis5["sigma"] == (gis5["sigma"])  # finite
    assert 4.0 < gis5["sigma"] < 6.0
    assert mc5["n_failures"] == 0 or not mc5["converged"]  # MC blind at 5 sigma
    assert gis5["speedup_vs_mc"] > 100
