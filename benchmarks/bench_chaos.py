"""Fault-tolerance overhead benchmark with a machine-readable report.

Runs one pinned shard plan three ways — fault-free baseline, under an
injected fault schedule (transient exception + worker kill + NaN
corruption, each recovered by the retry policy), and journaled-then-
resumed — asserting the engine's recovery contract as it goes: every
variant must merge **bit-identical** to the fault-free run.  It reports
the recovery cost (wall-clock vs baseline) and the fault counters, and
writes them to ``--json-out`` (default ``BENCH_chaos.json``) with the
same host-metadata ``_meta`` block the smoke benchmark records, so CI
can upload the artifact and track the overhead run over run::

    PYTHONPATH=src python benchmarks/bench_chaos.py

This is a *script*, not a pytest benchmark: the tier-1 suite does not
pay for it.  On a 1-CPU container the pooled runs measure fork and
respawn overhead, not parallel speedup (the report records the core
count so the numbers are read in context).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from smoke import host_metadata  # noqa: E402  (shared provenance block)


def build_core(runner):
    from repro.highsigma.analytic import LinearLimitState
    from repro.highsigma.estimators import MeanShiftISCore

    ls = LinearLimitState(beta=4.0, dim=6)
    return ls, MeanShiftISCore(
        ls, shifts=[4.0 * ls.a], n_max=8192, batch_size=256,
        target_rel_err=None, workers=2, n_shards=4, runner=runner,
    )


def run_variant(runner, seed):
    _, core = build_core(runner)
    t0 = time.perf_counter()
    res = core.run(np.random.default_rng(seed), method="bench")
    return res, time.perf_counter() - t0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--json-out", default="BENCH_chaos.json")
    args = parser.parse_args()

    from repro.engine.chaos import FaultSpec, reject_non_finite
    from repro.engine.journal import RunJournal
    from repro.engine.sharding import RetryPolicy, ShardedRunner, fork_available

    report = {"_meta": host_metadata(), "sections": {}}
    report["_meta"]["fork_available"] = fork_available()

    # Fault-free baseline (workers=1: the reference statistics).
    base, wall_base = run_variant(None, args.seed)
    report["sections"]["baseline"] = {"wall_s": round(wall_base, 4)}
    print(f"baseline (workers=1)    : {wall_base:8.3f}s  p_fail={base.p_fail:.6e}")

    # Chaos: every recovery path in one run.
    if fork_available():
        runner = ShardedRunner(
            workers=2,
            retry=RetryPolicy(max_attempts=4, validate=reject_non_finite),
            chaos=[
                FaultSpec("raise", shard=0),
                FaultSpec("kill", shard=1),
                FaultSpec("nan", shard=2),
            ],
        )
        chaos, wall_chaos = run_variant(runner, args.seed)
        runner.close()
        identical = (
            chaos.p_fail == base.p_fail and chaos.std_err == base.std_err
        )
        if not identical:
            print("FAIL: faulted run is not bit-identical to baseline")
            return 1
        stats = {k: int(v) for k, v in runner.fault_stats.items()}
        report["sections"]["chaos"] = {
            "wall_s": round(wall_chaos, 4),
            "overhead_vs_baseline": round(wall_chaos / wall_base, 3),
            "bit_identical": True,
            **stats,
        }
        print(
            f"chaos (3 faults, retry) : {wall_chaos:8.3f}s  "
            f"retries={stats['retries']} deaths={stats['worker_deaths']} "
            f"bit-identical=True"
        )
    else:
        print("chaos                   : skipped (no fork start method)")

    # Journal write + resume replay.
    journal_path = "bench_chaos.journal"
    try:
        with RunJournal(journal_path) as journal:
            runner = ShardedRunner(workers=1, journal=journal)
            first, wall_write = run_variant(runner, args.seed)
        with RunJournal(journal_path, resume=True) as journal:
            runner = ShardedRunner(workers=1, journal=journal)
            resumed, wall_resume = run_variant(runner, args.seed)
        replayed = int(runner.fault_stats["replayed"])
    finally:
        if os.path.exists(journal_path):
            os.remove(journal_path)
    if resumed.p_fail != base.p_fail or resumed.std_err != base.std_err:
        print("FAIL: resumed run is not bit-identical to baseline")
        return 1
    report["sections"]["journal"] = {
        "write_wall_s": round(wall_write, 4),
        "resume_wall_s": round(wall_resume, 4),
        "write_overhead_vs_baseline": round(wall_write / wall_base, 3),
        "replayed_shards": replayed,
        "bit_identical": True,
    }
    print(
        f"journal write           : {wall_write:8.3f}s  "
        f"(x{wall_write / wall_base:.2f} vs baseline)"
    )
    print(
        f"journal resume          : {wall_resume:8.3f}s  "
        f"replayed={replayed} bit-identical=True"
    )

    with open(args.json_out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    print(f"report written          : {args.json_out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
