"""Fault-tolerance benchmark — back-compat shim over ``repro-bench``.

The baseline/chaos-schedule/journal-resume comparison and its
bit-identity gates are the ``chaos``-tagged section of
:mod:`repro.bench` (which also owns ``host_metadata`` — the old
``from smoke import host_metadata`` sys.path hack is gone).  This shim
keeps the historical command line working::

    PYTHONPATH=src python benchmarks/bench_chaos.py

Exactly equivalent to ``repro-bench --tags chaos --json-out
BENCH_chaos.json``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

_ROOT = pathlib.Path(__file__).resolve().parent.parent
try:
    import repro  # noqa: F401
except ImportError:  # direct script invocation without PYTHONPATH=src
    sys.path.insert(0, str(_ROOT / "src"))

from repro.bench.cli import run_and_report  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--json-out", type=pathlib.Path,
                        default=pathlib.Path("BENCH_chaos.json"),
                        help="machine-readable report (shared bench schema)")
    args = parser.parse_args()

    return run_and_report(
        tags=["chaos"],
        overrides={"chaos-recovery": {"seed": args.seed}},
        json_out=args.json_out,
    )


if __name__ == "__main__":
    raise SystemExit(main())
