"""F7 — supply-voltage scaling of the read-failure sigma.

Low-voltage operation is where high-sigma analysis earns its keep: drive
currents collapse faster than the spec relaxes, and the failure sigma of
a fixed relative timing margin drops with VDD.  For each supply, the spec
is set to the same multiple of that supply's nominal access time and GIS
extracts the sigma.  Expected shape: monotone loss of sigma as VDD drops
— the classic VDD-scaling cliff.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.tables import render_series
from repro.experiments.workloads import make_read_limitstate
from repro.highsigma.gis import GradientImportanceSampling

N_STEPS = 400
VDDS = (1.0, 0.9, 0.8, 0.7)
SPEC_MULTIPLE = 2.0  # spec = 2x nominal access time at each VDD


def test_f7_vdd_scaling(benchmark, emit):
    def experiment():
        sigmas, nominals, specs = [], [], []
        for vdd in VDDS:
            probe = make_read_limitstate(1.0, vdd=vdd, n_steps=N_STEPS)
            t_nom = probe.metric(np.zeros(6))
            spec = SPEC_MULTIPLE * t_nom
            nominals.append(t_nom * 1e12)
            specs.append(spec * 1e12)

            ls = make_read_limitstate(spec, vdd=vdd, n_steps=N_STEPS)
            res = GradientImportanceSampling(
                ls, n_max=3500, target_rel_err=0.1
            ).run(np.random.default_rng(int(vdd * 100)))
            sigmas.append(res.sigma_level)
        return sigmas, nominals, specs

    sigmas, nominals, specs = run_once(benchmark, experiment)
    emit(
        "f7_vdd_scaling",
        render_series(
            list(VDDS),
            {
                "nominal_ps": nominals,
                "spec_ps": specs,
                "failure_sigma": sigmas,
            },
            x_label="vdd",
            title=f"F7: read-failure sigma vs VDD (spec = {SPEC_MULTIPLE:g}x nominal)",
        ),
    )

    # Shape: sigma degrades monotonically (within noise) as VDD drops,
    # and the low-VDD corner loses at least one full sigma vs nominal.
    assert sigmas[0] == max(sigmas)
    assert sigmas[0] - sigmas[-1] > 1.0
    assert all(b <= a + 0.3 for a, b in zip(sigmas, sigmas[1:]))
