"""F3 — the gradient MPFP search trajectory and search-cost comparison.

Left panel of the paper's figure: ||u|| and the margin g per iteration of
the gradient walk on the real read testbench.  Right panel: simulations
needed by each *search* strategy to produce a usable shift vector —
gradient search vs blind pre-sampling vs spherical shell search.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.tables import render_series, render_table
from repro.experiments.workloads import calibrate_read_spec, make_read_limitstate
from repro.highsigma.mnis import MinimumNormIS
from repro.highsigma.mpfp import MpfpSearch
from repro.highsigma.spherical import SphericalSearchIS

N_STEPS = 400


def test_f3_mpfp_search(benchmark, emit):
    def experiment():
        spec = calibrate_read_spec(sigma_target=5.0, n_steps=N_STEPS)

        # Panel 1: gradient-search trajectory.
        ls = make_read_limitstate(spec, n_steps=N_STEPS)
        res = MpfpSearch(ls).run()
        traj_norm = [float(np.linalg.norm(u)) for u, _ in res.trajectory]
        traj_g = [float(g) for _, g in res.trajectory]

        # Panel 2: search cost per strategy.
        cost_rows = [{
            "strategy": "gradient (iHL-RF)",
            "search_evals": res.n_evals,
            "shift_norm": res.beta,
            "found": True,
        }]

        ls2 = make_read_limitstate(spec, n_steps=N_STEPS)
        mnis = MinimumNormIS(ls2, n_presample=1000, presample_scale=2.0,
                             max_retries=4)
        try:
            centre = mnis.presample_centre(np.random.default_rng(0))
            cost_rows.append({
                "strategy": "pre-sampling (min-norm)",
                "search_evals": ls2.n_evals,
                "shift_norm": float(np.linalg.norm(centre)),
                "found": True,
            })
        except Exception as exc:
            cost_rows.append({"strategy": "pre-sampling (min-norm)",
                              "search_evals": ls2.n_evals,
                              "shift_norm": None, "found": False})

        ls3 = make_read_limitstate(spec, n_steps=N_STEPS)
        sph = SphericalSearchIS(ls3, n_directions=32)
        try:
            centre, radius = sph.search_centre(np.random.default_rng(1))
            cost_rows.append({
                "strategy": "spherical shells",
                "search_evals": ls3.n_evals,
                "shift_norm": float(radius),
                "found": True,
            })
        except Exception:
            cost_rows.append({"strategy": "spherical shells",
                              "search_evals": ls3.n_evals,
                              "shift_norm": None, "found": False})
        return traj_norm, traj_g, cost_rows, res

    traj_norm, traj_g, cost_rows, res = run_once(benchmark, experiment)
    text = render_series(
        list(range(len(traj_norm))),
        {"||u||": traj_norm, "g(u) [s]": traj_g},
        x_label="iteration",
        title="F3a: gradient MPFP search trajectory (read @ 5 sigma)",
    )
    text += "\n\n" + render_table(
        cost_rows,
        ["strategy", "search_evals", "shift_norm", "found"],
        title="F3b: simulations to find a shift vector",
    )
    emit("f3_mpfp_search", text)

    # Shape: the gradient search is the cheapest by a wide margin and its
    # shift norm is the smallest (closest point = best shift).
    grad = cost_rows[0]
    others = [r for r in cost_rows[1:] if r["found"]]
    assert res.converged
    assert all(grad["search_evals"] < r["search_evals"] / 3 for r in others)
    assert all(grad["shift_norm"] <= r["shift_norm"] + 0.3 for r in others)
