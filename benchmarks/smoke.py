"""60-second smoke benchmark — back-compat shim over ``repro-bench``.

The smoke sections, their wall-clock gates (per section and in total,
with the ``--min-section`` noise floor), the internal ratio/bit-identity
gates, the JSON report schema and the committed trajectory all live in
the :mod:`repro.bench` package now.  This script keeps the historical
command lines working::

    PYTHONPATH=src python benchmarks/smoke.py --check              # CI gate
    PYTHONPATH=src python benchmarks/smoke.py --update-baseline    # re-record

and is exactly equivalent to::

    repro-bench --tags smoke [--check|--update-baseline] ...

``host_metadata`` is re-exported for existing callers; its home is
:mod:`repro.bench.meta`.
"""

from __future__ import annotations

import pathlib
import sys

_ROOT = pathlib.Path(__file__).resolve().parent.parent
try:
    import repro  # noqa: F401
except ImportError:  # direct script invocation without PYTHONPATH=src
    sys.path.insert(0, str(_ROOT / "src"))

from repro.bench.cli import main as bench_main  # noqa: E402
from repro.bench.meta import host_metadata  # noqa: E402,F401  (back-compat)

BASELINE_PATH = _ROOT / "benchmarks" / "results" / "smoke_baseline.json"
TRAJECTORY_PATH = _ROOT / "benchmarks" / "results" / "trajectory.json"


def main() -> int:
    argv = sys.argv[1:]
    forwarded = [
        "--tags", "smoke",
        "--baseline", str(BASELINE_PATH),
        "--trajectory", str(TRAJECTORY_PATH),
    ]
    # The historical driver always wrote BENCH_smoke.json on --check.
    if "--check" in argv and "--json-out" not in argv:
        forwarded += ["--json-out", "BENCH_smoke.json"]
    return bench_main(forwarded + argv)


if __name__ == "__main__":
    raise SystemExit(main())
