"""60-second smoke benchmark with a wall-clock regression gate.

Runs a small fixed workload mix covering the hot paths (streaming
accumulator loop, gradient-IS end-to-end on the batched 6T engine,
sharded-plan execution) and compares total wall time against the
committed baseline::

    PYTHONPATH=src python benchmarks/smoke.py --check              # CI gate
    PYTHONPATH=src python benchmarks/smoke.py --update-baseline    # re-record

``--check`` exits non-zero when the run takes more than ``--factor``
(default 2.0) times the baseline — *per section and in total* — the CI
tripwire for accidental quadratic loops, per-batch re-reductions or
kernel regressions sneaking back in.  Gating each section separately
means a regression in one hot path (say the 6T engine) cannot hide
behind an unrelated speedup elsewhere.  Sections faster than
``--min-section`` seconds in the baseline are gated against
``factor * min-section`` instead, so timer noise on near-instant
sections cannot trip the gate.  The baseline is a wall-clock number from
one machine; the 2x margin is what absorbs ordinary machine-to-machine
variation.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

import numpy as np

BASELINE_PATH = pathlib.Path(__file__).parent / "results" / "smoke_baseline.json"


def workload_streaming_core() -> None:
    """Accumulator hot loop: many cheap batches, estimate every batch."""
    from repro.highsigma.analytic import LinearLimitState
    from repro.highsigma.estimators import MeanShiftISCore

    ls = LinearLimitState(beta=4.0, dim=8)
    core = MeanShiftISCore(
        ls, shifts=[4.0 * ls.a], n_max=64 * 1500, batch_size=64,
        target_rel_err=None,
    )
    core.run(np.random.default_rng(0), method="smoke")


def workload_gis_engine() -> None:
    """Gradient IS end-to-end on the real batched 6T read engine."""
    from repro.experiments.workloads import make_read_limitstate
    from repro.highsigma.gis import GradientImportanceSampling

    # Fixed spec (~4 sigma for the default design at n_steps=300): the
    # smoke run must not pay for a calibration sweep every time.
    ls = make_read_limitstate(4.995e-11, n_steps=300)
    gis = GradientImportanceSampling(ls, n_max=2000, target_rel_err=None)
    gis.run(np.random.default_rng(1))


def workload_sharded_plan() -> None:
    """A pinned 4-shard plan executed in-process (plan overhead path)."""
    from repro.highsigma.analytic import LinearLimitState
    from repro.highsigma.estimators import MeanShiftISCore

    ls = LinearLimitState(beta=4.0, dim=8)
    core = MeanShiftISCore(
        ls, shifts=[4.0 * ls.a], n_max=40000, batch_size=1024,
        target_rel_err=None, workers=1, n_shards=4,
    )
    core.run(np.random.default_rng(2), method="smoke")


def workload_system_read_batched() -> None:
    """Batched system-level read (ten axes, compiled fast path).

    Also asserts the point of the batched path: evaluating the block
    through ``g_batch`` must beat the scalar per-sample loop over the
    same samples by at least 2x wall clock, or the section fails.
    """
    from repro.experiments.workloads import make_system_read_limitstate

    ls = make_system_read_limitstate(6e-11, n_steps=300)
    rng = np.random.default_rng(3)
    u = rng.normal(0.0, 1.0, size=(1024, 10))
    t0 = time.perf_counter()
    g_batched = ls.g_batch(u)
    t_batched = time.perf_counter() - t0

    # Scalar per-sample loop on a subset (the full block would dominate
    # the smoke budget — exactly the point being made).
    n_scalar = 32
    t0 = time.perf_counter()
    g_scalar = np.array([ls.g(row) for row in u[:n_scalar]])
    t_scalar_per = (time.perf_counter() - t0) / n_scalar
    np.testing.assert_allclose(g_batched[:n_scalar], g_scalar, rtol=1e-9)

    speedup = t_scalar_per * u.shape[0] / t_batched
    print(f"  [system-read] batched vs per-sample loop: {speedup:.1f}x")
    if speedup < 2.0:
        raise RuntimeError(
            f"batched system-read only {speedup:.2f}x faster than the "
            "scalar per-sample loop (acceptance floor: 2x)"
        )


def workload_column_read_batched() -> None:
    """Bulk sampling on the 34-node read column (96 variation axes).

    Times one bulk block through the sparse-assembly compiled column
    and through the dense-assembly cross-check at the same sample
    count.  Asserts the sparse pass's acceptance floor: >= 2x faster
    per sample than dense assembly, and bit-equal to it (min of two
    timed runs per path, so timer noise on a loaded runner cannot trip
    the gate spuriously).  The bit-equality leg pins the stamp-
    determinism invariant for *this* BLAS build (the scatter rounds
    replay dgemm's ascending-k reduction; see the `_SPARSE_MIN_BATCH`
    note in repro.spice.compile) — a numpy linked against a BLAS with a
    different reduction order would fail here by design, flagging that
    the invariant needs re-validating rather than hiding it.
    """
    from repro.experiments.workloads import make_column_read_limitstate

    n = 128
    rng = np.random.default_rng(4)
    u = rng.normal(0.0, 1.0, size=(n, 96))
    times, vals = {}, {}
    for asm in ("sparse", "dense"):
        ls = make_column_read_limitstate(6e-11, n_steps=300, assembly=asm)
        ls.g_batch(u[:4])  # compile outside the timed region
        best = float("inf")
        for _ in range(2):
            t0 = time.perf_counter()
            vals[asm] = ls.g_batch(u)
            best = min(best, time.perf_counter() - t0)
        times[asm] = best
    np.testing.assert_array_equal(vals["sparse"], vals["dense"])
    speedup = times["dense"] / times["sparse"]
    print(f"  [column-read] sparse vs dense assembly: {speedup:.1f}x")
    if speedup < 2.0:
        raise RuntimeError(
            f"sparse-assembly column read only {speedup:.2f}x faster than "
            "the dense-assembly path (acceptance floor: 2x)"
        )


WORKLOADS = [
    ("streaming-core", workload_streaming_core),
    ("gis-6t-engine", workload_gis_engine),
    ("sharded-plan", workload_sharded_plan),
    ("system-read-batched", workload_system_read_batched),
    ("column-read-batched", workload_column_read_batched),
]


def run_smoke() -> dict:
    timings = {}
    total = 0.0
    for name, fn in WORKLOADS:
        t0 = time.perf_counter()
        fn()
        dt = time.perf_counter() - t0
        timings[name] = round(dt, 3)
        total += dt
        print(f"{name:16s}: {dt:6.2f} s")
    timings["total"] = round(total, 3)
    print(f"{'total':16s}: {total:6.2f} s")
    return timings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="fail if total wall time exceeds factor * baseline")
    parser.add_argument("--update-baseline", action="store_true",
                        help="record this run as the new baseline")
    parser.add_argument("--factor", type=float, default=2.0)
    parser.add_argument("--min-section", type=float, default=0.5,
                        help="sections with a baseline below this many "
                             "seconds are gated against factor * this "
                             "floor (timer-noise guard)")
    args = parser.parse_args()

    timings = run_smoke()

    if args.update_baseline:
        BASELINE_PATH.parent.mkdir(exist_ok=True)
        BASELINE_PATH.write_text(json.dumps(timings, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
        return 0

    if args.check:
        if not BASELINE_PATH.exists():
            print(f"no baseline at {BASELINE_PATH}; run --update-baseline first")
            return 1
        baseline = json.loads(BASELINE_PATH.read_text())
        failed = False
        for name, _ in WORKLOADS:
            base = baseline.get(name)
            if base is None:
                print(f"NOTE: section {name!r} missing from baseline; "
                      "re-record with --update-baseline")
                continue
            limit = args.factor * max(base, args.min_section)
            status = "ok" if timings[name] <= limit else "FAIL"
            print(f"{name:16s}: {timings[name]:6.2f} s  "
                  f"(baseline {base:.2f} s, limit {limit:.2f} s)  {status}")
            failed |= timings[name] > limit
        total_limit = args.factor * baseline["total"]
        print(f"{'total':16s}: {timings['total']:6.2f} s  "
              f"(baseline {baseline['total']:.2f} s, limit {total_limit:.2f} s)")
        if timings["total"] > total_limit:
            failed = True
        if failed:
            print("FAIL: smoke run regressed against the per-section gate")
            return 1
        print("smoke benchmark within budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
