"""60-second smoke benchmark with a wall-clock regression gate.

Runs a small fixed workload mix covering the hot paths (streaming
accumulator loop, gradient-IS end-to-end on the batched 6T engine,
sharded-plan execution, compiled bulk workloads) and compares total wall
time against the committed baseline::

    PYTHONPATH=src python benchmarks/smoke.py --check              # CI gate
    PYTHONPATH=src python benchmarks/smoke.py --update-baseline    # re-record

``--check`` exits non-zero when the run takes more than ``--factor``
(default 2.0) times the baseline — *per section and in total* — the CI
tripwire for accidental quadratic loops, per-batch re-reductions or
kernel regressions sneaking back in.  Gating each section separately
means a regression in one hot path (say the 6T engine) cannot hide
behind an unrelated speedup elsewhere.  Sections faster than
``--min-section`` seconds in the baseline are gated against
``factor * min-section`` instead, so timer noise on near-instant
sections cannot trip the gate.  The baseline is a wall-clock number from
one machine; the 2x margin is what absorbs ordinary machine-to-machine
variation.

``--check`` also writes a machine-readable report (``--json-out``,
default ``BENCH_smoke.json``) with per-section wall-clock, the internal
speedup ratios the sections assert on, per-section deltas against the
committed baseline, and host metadata — the file CI uploads as an
artifact so the performance trajectory is recorded run over run instead
of evaporating with the runner.  On top of that ``--check`` appends a
per-run summary (seconds, speedup ratios, host ``_meta``) to the
*committed* ``benchmarks/results/trajectory.json`` — the across-PR
performance record.  ``--update-baseline`` stamps the same
host metadata into ``smoke_baseline.json`` (under ``"_meta"``), so when
a gate trips the baseline's provenance — which machine, which Python,
which numpy — is auditable instead of folklore.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import time

import numpy as np

BASELINE_PATH = pathlib.Path(__file__).parent / "results" / "smoke_baseline.json"
TRAJECTORY_PATH = pathlib.Path(__file__).parent / "results" / "trajectory.json"


def host_metadata() -> dict:
    """Provenance of a timing: machine, interpreter, BLAS-bearing numpy."""
    cpu = platform.processor() or platform.machine()
    try:
        with open("/proc/cpuinfo") as f:
            for line in f:
                if line.lower().startswith("model name"):
                    cpu = line.split(":", 1)[1].strip()
                    break
    except OSError:
        pass
    import os

    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu": cpu,
        "cpu_count": os.cpu_count(),
        "recorded_unix": round(time.time(), 1),
    }


def workload_streaming_core():
    """Accumulator hot loop: many cheap batches, estimate every batch."""
    from repro.highsigma.analytic import LinearLimitState
    from repro.highsigma.estimators import MeanShiftISCore

    ls = LinearLimitState(beta=4.0, dim=8)
    core = MeanShiftISCore(
        ls, shifts=[4.0 * ls.a], n_max=64 * 1500, batch_size=64,
        target_rel_err=None,
    )
    core.run(np.random.default_rng(0), method="smoke")


def workload_gis_engine():
    """Gradient IS end-to-end on the real batched 6T read engine."""
    from repro.experiments.workloads import make_read_limitstate
    from repro.highsigma.gis import GradientImportanceSampling

    # Fixed spec (~4 sigma for the default design at n_steps=300): the
    # smoke run must not pay for a calibration sweep every time.
    ls = make_read_limitstate(4.995e-11, n_steps=300)
    gis = GradientImportanceSampling(ls, n_max=2000, target_rel_err=None)
    gis.run(np.random.default_rng(1))


def workload_sharded_plan():
    """A pinned 4-shard plan executed in-process (plan overhead path)."""
    from repro.highsigma.analytic import LinearLimitState
    from repro.highsigma.estimators import MeanShiftISCore

    ls = LinearLimitState(beta=4.0, dim=8)
    core = MeanShiftISCore(
        ls, shifts=[4.0 * ls.a], n_max=40000, batch_size=1024,
        target_rel_err=None, workers=1, n_shards=4,
    )
    core.run(np.random.default_rng(2), method="smoke")


def workload_system_read_batched():
    """Batched system-level read (ten axes, compiled fast path).

    Also asserts the point of the batched path: evaluating the block
    through ``g_batch`` must beat the scalar per-sample loop over the
    same samples by at least 2x wall clock, or the section fails.
    """
    from repro.experiments.workloads import make_system_read_limitstate

    ls = make_system_read_limitstate(6e-11, n_steps=300)
    rng = np.random.default_rng(3)
    u = rng.normal(0.0, 1.0, size=(1024, 10))
    t0 = time.perf_counter()
    g_batched = ls.g_batch(u)
    t_batched = time.perf_counter() - t0

    # Scalar per-sample loop on a subset (the full block would dominate
    # the smoke budget — exactly the point being made).
    n_scalar = 32
    t0 = time.perf_counter()
    g_scalar = np.array([ls.g(row) for row in u[:n_scalar]])
    t_scalar_per = (time.perf_counter() - t0) / n_scalar
    np.testing.assert_allclose(g_batched[:n_scalar], g_scalar, rtol=1e-9)

    speedup = t_scalar_per * u.shape[0] / t_batched
    print(f"  [system-read] batched vs per-sample loop: {speedup:.1f}x")
    if speedup < 2.0:
        raise RuntimeError(
            f"batched system-read only {speedup:.2f}x faster than the "
            "scalar per-sample loop (acceptance floor: 2x)"
        )
    return {"speedup_batched_vs_scalar": round(speedup, 2)}


def workload_column_read_batched():
    """Bulk sampling on the 34-node read column (96 variation axes).

    Times one bulk block through the sparse-assembly compiled column
    and through the dense-assembly cross-check at the same sample
    count.  Asserts the sparse pass's acceptance floor: >= 2x faster
    per sample than dense assembly, and bit-equal to it (min of two
    timed runs per path, so timer noise on a loaded runner cannot trip
    the gate spuriously).  The bit-equality leg pins the stamp-
    determinism invariant for *this* BLAS build (the scatter rounds
    replay dgemm's ascending-k reduction; see the `_SPARSE_MIN_BATCH`
    note in repro.spice.compile) — a numpy linked against a BLAS with a
    different reduction order would fail here by design, flagging that
    the invariant needs re-validating rather than hiding it.
    """
    from repro.experiments.workloads import make_column_read_limitstate

    n = 128
    rng = np.random.default_rng(4)
    u = rng.normal(0.0, 1.0, size=(n, 96))
    times, vals = {}, {}
    for asm in ("sparse", "dense"):
        ls = make_column_read_limitstate(6e-11, n_steps=300, assembly=asm)
        ls.g_batch(u[:4])  # compile outside the timed region
        best = float("inf")
        for _ in range(2):
            t0 = time.perf_counter()
            vals[asm] = ls.g_batch(u)
            best = min(best, time.perf_counter() - t0)
        times[asm] = best
    np.testing.assert_array_equal(vals["sparse"], vals["dense"])
    speedup = times["dense"] / times["sparse"]
    print(f"  [column-read] sparse vs dense assembly: {speedup:.1f}x")
    if speedup < 2.0:
        raise RuntimeError(
            f"sparse-assembly column read only {speedup:.2f}x faster than "
            "the dense-assembly path (acceptance floor: 2x)"
        )
    return {"speedup_sparse_vs_dense": round(speedup, 2)}


def workload_array_read_batched():
    """Bulk sampling on a 2-column array slice behind the shared mux.

    The slice (2 columns x 8 cells: 38 unknowns) exercises the
    generalized Schur peel — per-column cell pairs against a border of
    all four bitlines, the mux data lines as interior singletons — and
    this section asserts its two acceptance floors:

    * the peel beats the generic guarded blocked elimination
      (``solver="blocked"``, the permanent cross-check) by >= 1.5x per
      sample on identical inputs (min of two timed runs per path; the
      measured margin on the baseline container is ~3-4x, and it grows
      with the column count since the peel is linear in the node count
      where the elimination is cubic);
    * sparse scatter-stamp assembly stays *bit-equal* to the dense
      incidence matmuls on the multi-column circuit — the stamp-
      determinism invariant at array scale.
    """
    from repro.experiments.workloads import make_array_read_limitstate

    n = 48
    n_cols, n_leakers = 2, 7
    rng = np.random.default_rng(5)
    u = rng.normal(0.0, 1.0, size=(n, 6 * n_cols * (n_leakers + 1)))

    times, vals = {}, {}
    for solver in ("schur", "blocked"):
        ls = make_array_read_limitstate(
            6e-11, n_cols=n_cols, n_leakers=n_leakers, n_steps=240,
            solver=solver,
        )
        ls.g_batch(u[:4])  # compile outside the timed region
        best = float("inf")
        for _ in range(2):
            t0 = time.perf_counter()
            vals[solver] = ls.g_batch(u)
            best = min(best, time.perf_counter() - t0)
        times[solver] = best
    # Different solver arithmetic, same converged answer: tolerance, not
    # bit-equality (that contract belongs to the assembly axis below).
    np.testing.assert_allclose(vals["schur"], vals["blocked"], rtol=1e-6)
    speedup = times["blocked"] / times["schur"]
    print(f"  [array-read] schur peel vs blocked elimination: {speedup:.1f}x")
    if speedup < 1.5:
        raise RuntimeError(
            f"array-slice Schur peel only {speedup:.2f}x faster than the "
            "generic blocked elimination (acceptance floor: 1.5x)"
        )

    ls_dense = make_array_read_limitstate(
        6e-11, n_cols=n_cols, n_leakers=n_leakers, n_steps=240,
        assembly="dense",
    )
    g_dense = ls_dense.g_batch(u)
    np.testing.assert_array_equal(g_dense, vals["schur"])
    return {"speedup_schur_vs_blocked": round(speedup, 2)}


def workload_plan_cache():
    """Serialized-plan setup and spawn-pool execution gates.

    Two acceptance floors from the plan-serialization layer:

    * a warm content-addressed cache hit (structural fingerprint plus
      in-memory template restore) rebuilds the 2-column array bench at
      least 2x faster than a cold compile — the compile-once contract;
    * an array-sigma run sharded over a persistent *spawn* pool — whose
      workers deserialize the shipped plan instead of recompiling —
      stays within 1.5x of the fork pool end-to-end (measured margin
      ~1.02x) and produces a *bit-identical* estimate, with the runner
      confirming the spawn path actually executed (the unpicklable-task
      fallback would report ``in-process``).

    The audited disk-tier restore time is reported as information, not
    gated: a cross-process load pays the full plan audit by design
    (admission control, not a fast path).
    """
    import tempfile

    from repro.sram.benches import bench_compiled
    from repro.spice.compile import CompiledTransient
    from repro.spice.plan import PlanCache, compile_cached

    ct = bench_compiled("array", n_cols=2, n_leakers=7, n_steps=240)
    circuit, grid = ct.circuit, ct.grid
    probes = (*ct._cross_probes, *ct._peak_probes, *ct._value_probes)

    t_cold = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        CompiledTransient(circuit, grid=grid, probes=probes)
        t_cold = min(t_cold, time.perf_counter() - t0)

    cache = PlanCache()
    compile_cached(circuit, grid, probes=probes, cache=cache)  # prime
    t_hit = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        compile_cached(circuit, grid, probes=probes, cache=cache)
        t_hit = min(t_hit, time.perf_counter() - t0)
    if cache.stats["mem_hits"] < 3:
        raise RuntimeError(
            f"plan cache missed on a warm key: {cache.stats}"
        )
    speedup = t_cold / t_hit
    print(f"  [plan-cache] warm hit vs cold compile: {speedup:.1f}x")
    if speedup < 2.0:
        raise RuntimeError(
            f"cached plan setup only {speedup:.2f}x faster than a cold "
            "compile (acceptance floor: 2x)"
        )

    with tempfile.TemporaryDirectory() as tmp:
        compile_cached(
            circuit, grid, probes=probes, cache=PlanCache(cache_dir=tmp)
        )
        reader = PlanCache(cache_dir=tmp)
        t0 = time.perf_counter()
        compile_cached(circuit, grid, probes=probes, cache=reader)
        t_disk = time.perf_counter() - t0
        if reader.stats["disk_hits"] != 1:
            raise RuntimeError(
                f"disk tier did not serve the warm key: {reader.stats}"
            )

    from repro.engine.sharding import ShardedRunner
    from repro.experiments.workloads import make_array_read_limitstate
    from repro.highsigma.gis import GradientImportanceSampling

    est, wall = {}, {}
    for method in ("fork", "spawn"):
        ls = make_array_read_limitstate(6e-11, n_cols=2, n_leakers=7, n_steps=240)
        runner = ShardedRunner(workers=2, persistent=True, start_method=method)
        t0 = time.perf_counter()
        gis = GradientImportanceSampling(
            ls, n_max=600, target_rel_err=None, workers=2, n_shards=2,
            runner=runner,
        )
        result = gis.run(np.random.default_rng(6))
        runner.close()
        wall[method] = time.perf_counter() - t0
        est[method] = result.p_fail
        if runner.last_mode != method:
            raise RuntimeError(
                f"{method} pool fell back to {runner.last_mode!r} execution"
            )
    if est["spawn"] != est["fork"]:
        raise RuntimeError(
            f"spawn-pool estimate {est['spawn']!r} differs from the fork "
            f"pool's {est['fork']!r} (same shard plan, same streams)"
        )
    ratio = wall["spawn"] / wall["fork"]
    print(f"  [plan-cache] spawn vs fork array-sigma: {ratio:.2f}x wall clock")
    if ratio > 1.5:
        raise RuntimeError(
            f"spawn-pool array-sigma took {ratio:.2f}x the fork pool "
            "(acceptance ceiling: 1.5x) — are workers recompiling instead "
            "of deserializing the shipped plan?"
        )
    return {
        "speedup_cached_vs_cold": round(speedup, 2),
        "cold_compile_s": round(t_cold, 4),
        "cache_hit_s": round(t_hit, 5),
        "disk_restore_s": round(t_disk, 4),
        "spawn_vs_fork": round(ratio, 3),
    }


WORKLOADS = [
    ("streaming-core", workload_streaming_core),
    ("gis-6t-engine", workload_gis_engine),
    ("sharded-plan", workload_sharded_plan),
    ("system-read-batched", workload_system_read_batched),
    ("column-read-batched", workload_column_read_batched),
    ("array-read-batched", workload_array_read_batched),
    ("plan-cache", workload_plan_cache),
]


def run_smoke():
    """Run every section; returns ``(timings, extras, errors)``.

    ``extras`` holds whatever ratio dict a section chose to report.  A
    section whose *internal* gate trips (``RuntimeError``) or whose
    equality assertion fails lands in ``errors`` instead of aborting the
    run: the remaining sections still execute and the caller still gets
    a full report to archive — a failing run's numbers are exactly the
    ones worth inspecting.
    """
    timings = {}
    extras = {}
    errors = {}
    total = 0.0
    for name, fn in WORKLOADS:
        t0 = time.perf_counter()
        try:
            info = fn()
        except (RuntimeError, AssertionError) as exc:
            info = None
            errors[name] = str(exc)
            print(f"  [{name}] FAILED: {exc}")
        dt = time.perf_counter() - t0
        timings[name] = round(dt, 3)
        if info:
            extras[name] = info
        total += dt
        print(f"{name:20s}: {dt:6.2f} s")
    timings["total"] = round(total, 3)
    print(f"{'total':20s}: {total:6.2f} s")
    return timings, extras, errors


def write_report(path: pathlib.Path, timings: dict, extras: dict,
                 errors: dict, baseline: dict) -> None:
    """Emit the machine-readable run record CI archives as an artifact."""
    sections = {}
    for name, _ in WORKLOADS:
        entry = {"seconds": timings[name]}
        base = baseline.get(name)
        if base is not None:
            entry["baseline_seconds"] = base
            entry["vs_baseline"] = round(timings[name] / base, 3) if base else None
        else:
            # The committed baseline predates this section; the check
            # fails readably and this marker tells the artifact reader
            # why (re-record with --update-baseline).
            entry["missing_from_baseline"] = True
        entry.update(extras.get(name, {}))
        if name in errors:
            entry["error"] = errors[name]
        sections[name] = entry
    report = {
        "sections": sections,
        "total_seconds": timings["total"],
        "baseline_total_seconds": baseline.get("total"),
        "baseline_meta": baseline.get("_meta"),
        "meta": host_metadata(),
    }
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"report written to {path}")


def append_trajectory(timings: dict, extras: dict, errors: dict) -> None:
    """Append this run's summary to the committed performance trajectory.

    ``trajectory.json`` is the across-PR record: one entry per
    ``--check`` run, each with per-section seconds, the internal speedup
    ratios the sections assert on, any tripped gates, and the host
    metadata needed to compare numbers across runners.  Unlike the
    per-run ``BENCH_smoke.json`` artifact it accumulates, so the
    performance history survives in the repository instead of
    evaporating with each CI runner.
    """
    import os

    TRAJECTORY_PATH.parent.mkdir(exist_ok=True)
    try:
        doc = json.loads(TRAJECTORY_PATH.read_text())
    except (OSError, ValueError):
        doc = {"runs": []}
    run = {
        "sections": {
            name: {"seconds": timings[name], **extras.get(name, {})}
            for name, _ in WORKLOADS
        },
        "total_seconds": timings["total"],
        "_meta": host_metadata(),
    }
    if errors:
        run["errors"] = errors
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        run["commit"] = sha
    doc["runs"].append(run)
    TRAJECTORY_PATH.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"trajectory appended to {TRAJECTORY_PATH} ({len(doc['runs'])} runs)")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="fail if total wall time exceeds factor * baseline")
    parser.add_argument("--update-baseline", action="store_true",
                        help="record this run as the new baseline (with host "
                             "metadata under '_meta' for provenance)")
    parser.add_argument("--factor", type=float, default=2.0)
    parser.add_argument("--min-section", type=float, default=0.5,
                        help="sections with a baseline below this many "
                             "seconds are gated against factor * this "
                             "floor (timer-noise guard)")
    parser.add_argument("--json-out", type=pathlib.Path,
                        default=pathlib.Path("BENCH_smoke.json"),
                        help="machine-readable report written on --check "
                             "(per-section wall-clock, speedup ratios, "
                             "baseline deltas, host metadata)")
    args = parser.parse_args()

    timings, extras, errors = run_smoke()

    if args.update_baseline:
        if errors:
            print("FAIL: refusing to record a baseline from a run with "
                  f"failing sections: {sorted(errors)}")
            return 1
        BASELINE_PATH.parent.mkdir(exist_ok=True)
        record = dict(timings)
        record["_meta"] = host_metadata()
        BASELINE_PATH.write_text(json.dumps(record, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
        return 0

    if args.check:
        if not BASELINE_PATH.exists():
            print(f"no baseline at {BASELINE_PATH}; run --update-baseline first")
            return 1
        baseline = json.loads(BASELINE_PATH.read_text())
        write_report(args.json_out, timings, extras, errors, baseline)
        append_trajectory(timings, extras, errors)
        failed = bool(errors)
        stale = [
            name for name, _ in WORKLOADS if baseline.get(name) is None
        ]
        if "total" not in baseline:
            stale.append("total")
        for name, _ in WORKLOADS:
            base = baseline.get(name)
            if base is None:
                print(f"FAIL: section {name!r} ({timings[name]:.2f} s) is "
                      "missing from the committed baseline; re-record with "
                      "--update-baseline")
                continue
            limit = args.factor * max(base, args.min_section)
            status = "ok" if timings[name] <= limit else "FAIL"
            print(f"{name:20s}: {timings[name]:6.2f} s  "
                  f"(baseline {base:.2f} s, limit {limit:.2f} s)  {status}")
            failed |= timings[name] > limit
        if "total" in baseline:
            total_limit = args.factor * baseline["total"]
            print(f"{'total':20s}: {timings['total']:6.2f} s  "
                  f"(baseline {baseline['total']:.2f} s, "
                  f"limit {total_limit:.2f} s)")
            if timings["total"] > total_limit:
                failed = True
        else:
            print("FAIL: baseline has no 'total' entry; re-record with "
                  "--update-baseline")
        if stale:
            print("FAIL: baseline is stale (missing sections: "
                  f"{', '.join(stale)}); re-record with --update-baseline")
            failed = True
        if failed:
            print("FAIL: smoke run regressed against the per-section gate")
            return 1
        print("smoke benchmark within budget")
        return 0

    # Plain run (no --check/--update-baseline): still fail loudly when a
    # section's internal gate tripped.
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
