"""F5 — dimensionality scaling at fixed budget.

The argument for gradient search over blind search: a finite-difference
gradient costs O(d) simulations while the probability that any random
pre-sample/direction aligns with the failure direction decays much
faster.  On the curved analytic workload (exact truth available) from
d=6 to d=48 at a fixed total budget, expected shape: GIS's error stays
flat-ish; MNIS and spherical blow up or fail outright as d grows.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.tables import render_series
from repro.highsigma.analytic import QuadraticLimitState
from repro.highsigma.gis import GradientImportanceSampling
from repro.highsigma.mnis import MinimumNormIS
from repro.highsigma.spherical import SphericalSearchIS

DIMS = (6, 12, 24, 48)
BUDGET = 6000
BETA = 4.5
KAPPA = 0.08


def log10_err(p_est, p_exact):
    if not p_est or p_est <= 0:
        return None
    return float(abs(np.log10(p_est) - np.log10(p_exact)))


def test_f5_dimensionality(benchmark, emit):
    def experiment():
        series = {"gis": [], "mnis": [], "spherical": [], "gis_ess": []}
        exacts = []
        for d in DIMS:
            exact = QuadraticLimitState(beta=BETA, dim=d, kappa=KAPPA).exact_pfail()
            exacts.append(exact)

            ls = QuadraticLimitState(beta=BETA, dim=d, kappa=KAPPA)
            res = GradientImportanceSampling(
                ls, n_max=BUDGET, target_rel_err=None
            ).run(np.random.default_rng(d))
            series["gis"].append(log10_err(res.p_fail, exact))
            series["gis_ess"].append(res.ess)

            ls = QuadraticLimitState(beta=BETA, dim=d, kappa=KAPPA)
            try:
                res = MinimumNormIS(
                    ls, n_presample=BUDGET // 3, presample_scale=2.0,
                    n_max=BUDGET, target_rel_err=None,
                ).run(np.random.default_rng(d + 100))
                series["mnis"].append(log10_err(res.p_fail, exact))
            except Exception:
                series["mnis"].append(None)

            ls = QuadraticLimitState(beta=BETA, dim=d, kappa=KAPPA)
            try:
                res = SphericalSearchIS(
                    ls, n_max=BUDGET, target_rel_err=None
                ).run(np.random.default_rng(d + 200))
                series["spherical"].append(log10_err(res.p_fail, exact))
            except Exception:
                series["spherical"].append(None)
        return series, exacts

    series, exacts = run_once(benchmark, experiment)
    emit(
        "f5_dimensionality",
        render_series(
            list(DIMS),
            {
                "gis_log10err": series["gis"],
                "mnis_log10err": series["mnis"],
                "spherical_log10err": series["spherical"],
                "gis_ess": series["gis_ess"],
            },
            x_label="dim",
            title=f"F5: |log10 error| vs dimension at {BUDGET} evals "
                  f"(curved boundary, beta={BETA})",
        ),
    )

    # Shape: GIS under half a decade of error at every dimension; at the
    # largest dimension every baseline is either worse or dead.
    assert all(e is not None and e < 0.5 for e in series["gis"])
    worst_gis = max(series["gis"])
    last_others = [series["mnis"][-1], series["spherical"][-1]]
    assert all(e is None or e > worst_gis for e in last_others)
