"""Throughput benchmark: fused compiled kernels vs reference integrators.

Runs identical read and write batches through ``Batched6T`` with
``kernel="fast"`` (with and without retirement) and ``kernel="reference"``,
reports samples/second, and — as a CI gate — asserts that the fast kernel
is at least as fast as the reference path and that the two agree on the
metrics.  A second section runs a compiled *non-6T* circuit (the
sense-amp latch) through both compiled kernels, so a compiler regression
cannot hide behind the 6T specialisation; a third runs a multi-column
array slice, where the fused path additionally carries the sparse
scatter-stamp assembly and the per-column Schur peel against the
reference kernel's per-device ``np.linalg.solve``::

    PYTHONPATH=src python benchmarks/bench_kernel.py
    PYTHONPATH=src python benchmarks/bench_kernel.py --n 2048 --repeat 3
"""

from __future__ import annotations

import argparse
import time

import numpy as np


def bench(engine, mode: str, dvth, bmult, repeat: int):
    """Best-of-``repeat`` samples/second for one engine and operation."""
    op = engine.read if mode == "read" else engine.write
    best = float("inf")
    result = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        result = op(dvth, bmult)
        best = min(best, time.perf_counter() - t0)
    return dvth.shape[0] / best, result


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=512, help="samples per batch")
    parser.add_argument("--n-steps", type=int, default=300)
    parser.add_argument("--repeat", type=int, default=2)
    parser.add_argument("--sigma-vth", type=float, default=0.03,
                        help="per-device delta-vth spread [V]")
    args = parser.parse_args()

    from repro.sram.batched import Batched6T

    rng = np.random.default_rng(42)
    dvth = rng.normal(0.0, args.sigma_vth, size=(args.n, 6))
    bmult = 1.0 + rng.normal(0.0, 0.05, size=(args.n, 6))

    engines = {
        "reference": Batched6T(n_steps=args.n_steps, kernel="reference"),
        "fast": Batched6T(n_steps=args.n_steps, kernel="fast", retire=False),
        "fast+retire": Batched6T(n_steps=args.n_steps, kernel="fast", retire=True),
    }

    ok = True
    rates = {}
    for mode in ("read", "write"):
        results = {}
        for name, eng in engines.items():
            sps, res = bench(eng, mode, dvth, bmult, args.repeat)
            rates[(name, mode)] = sps
            results[name] = res
            print(f"{mode:5s} {name:12s}: {sps:9.1f} samples/s")
        ref = results["reference"].metric
        for name in ("fast", "fast+retire"):
            rel = np.max(np.abs(results[name].metric - ref) / np.abs(ref))
            agree = rel < 1e-6
            ok &= agree
            print(f"      {name:12s} vs reference max rel metric diff: "
                  f"{rel:.3e} {'ok' if agree else 'FAIL'}")
        if rates[("fast", mode)] < rates[("reference", mode)]:
            print(f"FAIL: fast kernel slower than reference for {mode}")
            ok = False

    # ------------------------------------------------------------------
    # Compiled non-6T circuit: the sense-amp latch (3 unknowns, solve3).
    # ------------------------------------------------------------------
    from repro.sram.senseamp import SenseAmp

    sense = SenseAmp()
    dvt_sa = rng.normal(0.0, 0.02, size=(args.n, 4))
    dv_sa = rng.uniform(-0.15, 0.15, size=args.n)
    sa_results = {}
    sa_rates = {}
    for name in ("reference", "fast"):
        best = float("inf")
        for _ in range(args.repeat):
            t0 = time.perf_counter()
            sa_results[name] = sense.resolve_batch(dv_sa, dvt_sa, kernel=name)
            best = min(best, time.perf_counter() - t0)
        sa_rates[name] = args.n / best
        print(f"latch {name:12s}: {sa_rates[name]:9.1f} samples/s")
    c_ref, t_ref = sa_results["reference"]
    c_fast, t_fast = sa_results["fast"]
    decisions_equal = bool(
        (c_fast == c_ref).all()
        and (np.isfinite(t_fast) == np.isfinite(t_ref)).all()
    )
    finite = np.isfinite(t_ref) & np.isfinite(t_fast)
    rel = float(np.max(
        np.abs(t_fast[finite] - t_ref[finite]) / t_ref[finite]
    )) if finite.any() else 0.0
    agree = decisions_equal and rel < 1e-6
    ok &= agree
    print(f"      {'fast':12s} vs reference latch: decisions "
          f"{'equal' if decisions_equal else 'DIFFER'}, "
          f"max rel time diff {rel:.3e} {'ok' if agree else 'FAIL'}")
    if sa_rates["fast"] < sa_rates["reference"]:
        print("FAIL: fused compiled latch slower than its reference kernel")
        ok = False

    # ------------------------------------------------------------------
    # Compiled array slice: 2 columns behind the shared mux (22 unknowns,
    # sparse assembly + per-column Schur peel on the fused path).
    # ------------------------------------------------------------------
    from repro.sram.array import ArrayConfig, ArraySlice

    arr = ArraySlice(config=ArrayConfig(n_cols=2, n_leakers=3))
    n_arr = min(args.n, 128)  # the reference path is per-device Python
    dvt_arr = rng.normal(0.0, 0.03, size=(n_arr, arr.n_variation_devices))
    arr_results = {}
    arr_rates = {}
    for name in ("reference", "fast"):
        arr.access_times_batch(dvt_arr[:2], n_steps=args.n_steps, kernel=name)
        best = float("inf")
        for _ in range(args.repeat):
            t0 = time.perf_counter()
            arr_results[name] = arr.access_times_batch(
                dvt_arr, n_steps=args.n_steps, kernel=name
            )
            best = min(best, time.perf_counter() - t0)
        arr_rates[name] = n_arr / best
        print(f"array {name:12s}: {arr_rates[name]:9.1f} samples/s")
    rel = float(np.max(
        np.abs(arr_results["fast"] - arr_results["reference"])
        / np.abs(arr_results["reference"])
    ))
    agree = rel < 1e-6
    ok &= agree
    print(f"      {'fast':12s} vs reference array: max rel metric diff "
          f"{rel:.3e} {'ok' if agree else 'FAIL'}")
    if arr_rates["fast"] < arr_rates["reference"]:
        print("FAIL: fused compiled array slower than its reference kernel")
        ok = False

    if not ok:
        return 1
    print("kernel benchmark ok: fast >= reference, metrics agree")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
