"""Kernel throughput benchmark — back-compat shim over ``repro-bench``.

The fast-vs-reference sweeps (6T engine, compiled latch, compiled
array slice) are the ``kernel``-tagged sections of :mod:`repro.bench`;
their floors (fast >= reference, metrics agree to 1e-6) are declarative
:class:`~repro.bench.gates.GateSpec` data.  This shim keeps the
historical flags working and now emits the shared JSON report schema
(``--json-out``, default ``BENCH_kernel.json``) instead of relying on
``tee``'d stdout::

    PYTHONPATH=src python benchmarks/bench_kernel.py
    PYTHONPATH=src python benchmarks/bench_kernel.py --n 2048 --repeat 3

Exactly equivalent to ``repro-bench --tags kernel`` with per-section
parameter overrides.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

_ROOT = pathlib.Path(__file__).resolve().parent.parent
try:
    import repro  # noqa: F401
except ImportError:  # direct script invocation without PYTHONPATH=src
    sys.path.insert(0, str(_ROOT / "src"))

from repro.bench.cli import run_and_report  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=512, help="samples per batch")
    parser.add_argument("--n-steps", type=int, default=300)
    parser.add_argument("--repeat", type=int, default=2)
    parser.add_argument("--sigma-vth", type=float, default=0.03,
                        help="per-device delta-vth spread [V]")
    parser.add_argument("--json-out", type=pathlib.Path,
                        default=pathlib.Path("BENCH_kernel.json"),
                        help="machine-readable report (shared bench schema)")
    args = parser.parse_args()

    return run_and_report(
        tags=["kernel"],
        overrides={
            "kernel-6t": {
                "n": args.n, "n_steps": args.n_steps,
                "sigma_vth": args.sigma_vth, "repeat": args.repeat,
            },
            "kernel-latch": {"n": args.n, "repeat": args.repeat},
            "kernel-array": {
                "n": args.n, "n_steps": args.n_steps, "repeat": args.repeat,
            },
        },
        json_out=args.json_out,
    )


if __name__ == "__main__":
    raise SystemExit(main())
