"""T1 — accuracy and cost on analytic limit states with exact answers.

Reproduces the paper's method-comparison table: for hyperplane and curved
boundaries at 4/5/6 sigma in 6/12/24 dimensions, every method's estimate
is judged against the *closed-form* failure probability.  Expected shape:

* plain MC resolves nothing past ~4 sigma at this budget;
* GIS tracks the exact value within its reported confidence interval at a
  few thousand evaluations everywhere;
* MNIS/spherical degrade with dimension (search noise), SSS degrades
  with curvature (model bias) — each visibly worse than GIS somewhere.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.runners import default_methods, run_comparison
from repro.experiments.tables import render_table
from repro.experiments.workloads import analytic_grid_workloads

COLUMNS = [
    "workload", "method", "p_fail", "exact_pfail", "err_vs_exact",
    "sigma", "n_evals", "speedup_vs_mc", "error",
]


def test_t1_analytic_accuracy(benchmark, emit):
    def experiment():
        workloads = analytic_grid_workloads(sigmas=(4.0, 5.0, 6.0), dims=(6, 12, 24))
        methods = default_methods(n_max=6000, target_rel_err=0.1, mc_budget=200000)
        rows = []
        for wl in workloads:
            rows.extend(run_comparison(wl, methods, seeds=(0,)))
        return rows

    rows = run_once(benchmark, experiment)
    emit(
        "t1_analytic_accuracy",
        render_table(
            rows,
            COLUMNS,
            title="T1: analytic accuracy grid (exact-truth comparison)",
        ),
    )

    # Reproduction assertions (shape, not absolute numbers): GIS within
    # 50% of exact everywhere it ran; MC blind at 6 sigma.
    gis_rows = [r for r in rows if r["method"] == "gis" and r.get("err_vs_exact") is not None]
    assert gis_rows, "GIS must produce estimates"
    assert np.median([r["err_vs_exact"] for r in gis_rows]) < 0.3
    mc6 = [r for r in rows if r["method"] == "mc" and "-6s-" in r["workload"]]
    assert all((r.get("p_fail") or 0.0) == 0.0 or not r["converged"] for r in mc6)
